"""Advisor shootout: advisor-picked formats vs hand-picked on Table-3 workloads.

The paper's Table 3 fixes, per kernel, the storage formats a human expert
would pick.  This benchmark starts every kernel's catalog from a *neutral*
configuration (everything COO — the format loaders naturally produce) and
lets the workload-driven advisor (:mod:`repro.advisor`) search for a better
one; the advisor's pick is then measured side by side with a grid of
hand-picked configurations: the paper's Table-3 best, and the uniform
all-``dense`` / ``coo`` / ``dok`` / ``trie`` / compressed assignments a
non-expert might try.

Acceptance (asserted, so a regression fails the bench):

* the advisor's top recommendation must measure within
  ``TOLERANCE`` (25%) of the **best** hand-picked configuration, and
* strictly faster than the **worst** hand-picked configuration,

on every kernel.  Results (including per-configuration estimated cost where
the advisor scored that configuration) go to ``BENCH_advisor.json`` at the
repository root.  Run as a pytest module
(``pytest benchmarks/bench_advisor.py``) or directly
(``python benchmarks/bench_advisor.py``).  ``REPRO_SMOKE=1`` shrinks
repeats for CI; scale factors come from ``_config``.
"""

import json
import os
import platform

from _config import MATRIX_SCALE, REPEATS, TENSOR_SCALE, print_report
from repro.kernels import KERNELS
from repro.session import Session
from repro.workloads.experiments import matrix_kernel_catalog, tensor_kernel_catalog
from repro.workloads.harness import advisor_shootout, reformatted_catalog
from repro.workloads.reporting import format_table

#: Smoke mode (CI): fewer repeats, same kernels, same acceptance asserts.
SMOKE = os.environ.get("REPRO_SMOKE", "") not in ("", "0")

#: Advisor must measure within this factor of the best hand-picked config.
TOLERANCE = 1.25

#: (kernel, dataset) — the Table-3 format-sensitivity workloads.
CASES = (("MMM", "pdb1HYS"), ("SUMMM", "pdb1HYS"), ("BATAX", "pdb1HYS"),
         ("TTM", "NIPS"), ("MTTKRP", "NIPS"))

#: Hand-picked configurations per kernel: the paper's Table-3 best plus the
#: uniform assignments a non-expert might try.  (No all-dense rows for the
#: rank-3 kernels: densifying a sparse tensor is not a plausible hand pick.)
HAND_PICKED = {
    "MMM": {
        "paper-best": {"A": "csr", "B": "csr"},
        "all-dense": {"A": "dense", "B": "dense"},
        "all-coo": {"A": "coo", "B": "coo"},
        "all-dok": {"A": "dok", "B": "dok"},
        "all-trie": {"A": "trie", "B": "trie"},
    },
    "SUMMM": {
        "paper-best": {"A": "csc", "B": "csr"},
        "all-dense": {"A": "dense", "B": "dense"},
        "all-coo": {"A": "coo", "B": "coo"},
        "all-dok": {"A": "dok", "B": "dok"},
        "all-trie": {"A": "trie", "B": "trie"},
    },
    # (No all-dense row: densifying A makes BATAX quadratic in the stored
    # cells and measures in the tens of seconds — not a plausible hand pick.)
    "BATAX": {
        "paper-best": {"A": "csr", "X": "dense"},
        "all-coo": {"A": "coo", "X": "coo"},
        "all-dok": {"A": "dok", "X": "dok"},
        "all-trie": {"A": "trie", "X": "trie"},
    },
    "TTM": {
        "paper-best": {"A": "csf", "B": "csc"},
        "compressed": {"A": "csf", "B": "csr"},
        "all-coo": {"A": "coo", "B": "coo"},
        "all-dok": {"A": "dok", "B": "dok"},
        "all-trie": {"A": "trie", "B": "trie"},
    },
    "MTTKRP": {
        "paper-best": {"A": "csf", "B": "csr", "C": "csc"},
        "compressed": {"A": "csf", "B": "csr", "C": "csr"},
        "all-coo": {"A": "coo", "B": "coo", "C": "coo"},
        "all-dok": {"A": "dok", "B": "dok", "C": "dok"},
        "all-trie": {"A": "trie", "B": "trie", "C": "trie"},
    },
}

_JSON_PATH = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                          "BENCH_advisor.json")


def _base_catalog(kernel_name: str, dataset: str):
    """The kernel's catalog with every tensor re-stored as COO (neutral start)."""
    if kernel_name in ("MMM", "SUMMM", "BATAX"):
        catalog = matrix_kernel_catalog(kernel_name, dataset, scale=MATRIX_SCALE)
    else:
        catalog = tensor_kernel_catalog(kernel_name, dataset, scale=TENSOR_SCALE)
    return reformatted_catalog(catalog, {name: "coo" for name in catalog.tensors})


def bench_kernel(kernel_name: str, dataset: str, repeats: int) -> dict:
    """Advisor vs hand-picked for one kernel; returns the per-kernel report."""
    kernel = KERNELS[kernel_name]
    catalog = _base_catalog(kernel_name, dataset)

    session = Session(catalog)
    recommendation = session.advise(
        kernel.source, measure=True, top_k=3,
        measure_repeats=2 if SMOKE else max(3, repeats))
    estimated = {cand.label(): cand.estimated_cost for cand in recommendation.ranked}

    configurations = dict(HAND_PICKED[kernel_name])
    configurations["advisor"] = dict(recommendation.formats)
    measurements = advisor_shootout(kernel, catalog, configurations,
                                    dataset=dataset, repeats=repeats)
    by_label = {m.system.removeprefix("STOREL[").removesuffix("]"): m
                for m in measurements}

    rows = []
    for label, measurement in by_label.items():
        rows.append({
            "kernel": kernel_name,
            "config": label,
            "formats": measurement.detail,
            "mean_ms": measurement.mean_ms,
            "estimated_cost": estimated.get(measurement.detail),
            "status": measurement.status,
            "correct": measurement.correct,
        })

    def _ms(measurement):
        # Failed measurements rank as infinitely slow here so the report is
        # still written; _check() then fails with the per-row diagnostics.
        return measurement.mean_ms if measurement.mean_ms is not None else float("inf")

    hand = {label: m for label, m in by_label.items() if label != "advisor"}
    best_label = min(hand, key=lambda k: _ms(hand[k]))
    worst_label = max(hand, key=lambda k: _ms(hand[k]))
    advisor_ms = by_label["advisor"].mean_ms
    # When the advisor picked exactly one of the hand-picked configurations,
    # the two rows are the same configuration measured twice — compare with
    # the tighter of the duplicate measurements.
    for label, measurement in hand.items():
        if (configurations[label] == configurations["advisor"]
                and measurement.mean_ms is not None):
            advisor_ms = min(advisor_ms or float("inf"), measurement.mean_ms)
    return {
        "kernel": kernel_name,
        "dataset": dataset,
        "rows": rows,
        "advisor_formats": dict(recommendation.formats),
        "baseline_estimated_cost": recommendation.baseline.estimated_cost,
        "advised_estimated_cost": recommendation.best.estimated_cost,
        "estimated_speedup": round(recommendation.estimated_speedup, 3),
        "configurations_searched": recommendation.searched,
        "advisor_ms": advisor_ms,
        "best_hand_ms": hand[best_label].mean_ms,
        "best_hand_config": best_label,
        "worst_hand_ms": hand[worst_label].mean_ms,
        "worst_hand_config": worst_label,
        "vs_best": (round(advisor_ms / hand[best_label].mean_ms, 3)
                    if advisor_ms is not None and hand[best_label].mean_ms
                    else None),
        "vs_worst": (round(advisor_ms / hand[worst_label].mean_ms, 3)
                     if advisor_ms is not None and hand[worst_label].mean_ms
                     else None),
    }


def run_bench(repeats: int = max(3, REPEATS)) -> dict:
    kernels = [bench_kernel(kernel_name, dataset, repeats)
               for kernel_name, dataset in CASES]
    rows = [row for entry in kernels for row in entry["rows"]]
    table = format_table(rows, title="Advisor shootout — measured ms per storage "
                                     f"configuration (matrix scale {MATRIX_SCALE}, "
                                     f"tensor scale {TENSOR_SCALE})")
    table += "\n" + format_table(
        [{"kernel": e["kernel"], "advisor": e["advisor_ms"],
          "best_hand": e["best_hand_ms"], "worst_hand": e["worst_hand_ms"],
          "vs_best": e["vs_best"], "vs_worst": e["vs_worst"],
          "picked": ", ".join(f"{t}:{f}" for t, f in sorted(e["advisor_formats"].items()))}
         for e in kernels],
        title=f"advisor vs hand-picked (accept: vs_best <= {TOLERANCE}, vs_worst < 1)")
    print_report(table)
    return {
        "benchmark": "advisor",
        "matrix_scale": MATRIX_SCALE,
        "tensor_scale": TENSOR_SCALE,
        "repeats": repeats,
        "smoke": SMOKE,
        "tolerance_vs_best": TOLERANCE,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "kernels": kernels,
    }


def _write(report: dict) -> None:
    with open(_JSON_PATH, "w") as handle:
        json.dump(report, handle, indent=2)


def _check(report: dict) -> None:
    for entry in report["kernels"]:
        label = entry["kernel"]
        wrong = [row for row in entry["rows"] if row["correct"] is False]
        assert not wrong, f"{label}: incorrect results under {wrong}"
        failed = [row for row in entry["rows"] if row["status"] != "ok"]
        assert not failed, f"{label}: configurations failed to run: {failed}"
        assert entry["advisor_ms"] is not None, f"{label}: advisor config failed to run"
        assert entry["advisor_ms"] <= report["tolerance_vs_best"] * entry["best_hand_ms"], (
            f"{label}: advisor pick {entry['advisor_formats']} measured "
            f"{entry['advisor_ms']:.3f} ms, more than {report['tolerance_vs_best']}x the "
            f"best hand-picked {entry['best_hand_config']} ({entry['best_hand_ms']:.3f} ms)")
        assert entry["advisor_ms"] < entry["worst_hand_ms"], (
            f"{label}: advisor pick does not beat the worst hand-picked "
            f"{entry['worst_hand_config']} ({entry['worst_hand_ms']:.3f} ms)")


def test_advisor_benchmark(benchmark):
    """Advisor vs hand-picked on every Table-3 kernel; asserts the acceptance bars."""
    report = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    _write(report)
    _check(report)


def main() -> None:
    report = run_bench(repeats=max(3, REPEATS))
    _write(report)
    _check(report)
    worst_ratio = max(e["vs_best"] for e in report["kernels"])
    print(f"wrote {_JSON_PATH} (advisor within {worst_ratio}x of best hand-picked "
          "on every kernel)")


if __name__ == "__main__":
    import sys

    sys.exit(main())
