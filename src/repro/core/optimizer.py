"""The STOREL cost-based optimizer (Sec. 5 of the paper).

Pipeline (Fig. 2):

1. the tensor program (TP) and the tensor storage mappings (TSMs) are parsed
   and converted to De Bruijn form;
2. **stage 1** — the TP alone is rewritten with the storage-independent rules
   under equality saturation, and the cheapest equivalent program is
   extracted (Sec. 6.4 explains why the pipeline is split in two stages: a
   single saturation over the composed plan is too large a search space);
3. the result is composed with the TSMs into the naive logical plan
   (Sec. 5.1);
4. **stage 2** — the composed plan is rewritten with the full rule set
   (fusion, physical annotations); the e-graph is additionally seeded with
   the candidate plans produced by the deterministic strategies, so the
   well-known plan shapes are always represented regardless of whether
   saturation completes within its limits;
5. the cheapest physical plan is extracted with the cost model of Fig. 6 and
   returned together with the Egg-style metrics of both stages (Table 4).

A ``method="greedy"`` mode skips equality saturation and picks the cheapest
of the strategy-generated candidates directly; it is used by the benchmark
harness when only the *plan quality* (not the optimization process) is being
measured.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping

from ..egraph.egraph import EGraph
from ..egraph.runner import Runner, RunnerReport
from ..sdqlite.ast import Expr
from ..sdqlite.debruijn import to_debruijn_safe
from ..sdqlite.errors import OptimizationError
from . import rules as rule_sets
from . import strategies
from .compose import compose
from .cost import CostModel
from .statistics import Statistics


@dataclass
class StageReport:
    """Egg metrics for one optimization stage (one row of Table 4)."""

    name: str
    runner: RunnerReport
    extracted_cost: float

    def as_row(self) -> dict:
        row = {"stage": self.name, **self.runner.as_row(), "cost": self.extracted_cost}
        return row


@dataclass
class OptimizationResult:
    """The chosen physical plan plus everything needed to report on it."""

    plan: Expr
    cost: float
    naive_plan: Expr
    stage1: StageReport | None = None
    stage2: StageReport | None = None
    candidate_costs: dict[str, float] = field(default_factory=dict)
    chosen_candidate: str | None = None
    optimization_time_ms: float = 0.0

    def table4_rows(self) -> list[dict]:
        rows = []
        for stage in (self.stage1, self.stage2):
            if stage is not None:
                rows.append(stage.as_row())
        return rows


#: Engine configuration that reproduces the textbook (pre-index) saturation
#: loop: full rescans, materialized match lists, no rule scheduling, lazy
#: best-term maintenance.  Used by ``benchmarks/bench_optimizer.py`` as the
#: before-side of the before/after comparison; pass ``**LEGACY_ENGINE`` to
#: :class:`Optimizer` to get it.
LEGACY_ENGINE: dict = {
    "scheduler": "simple",
    "indexed": False,
    "incremental": False,
    "eager_terms": False,
}


class Optimizer:
    """Cost-based optimizer over flexible storage."""

    def __init__(self, stats: Statistics, *, iter_limit: int = 8,
                 node_limit: int = 5_000, time_limit: float = 5.0,
                 match_limit_per_rule: int = 400, seed_candidates: bool = True,
                 scheduler: str = "backoff", indexed: bool = True,
                 incremental: bool = True, ban_length: int = 4,
                 eager_terms: bool = True):
        self.stats = stats
        self.iter_limit = iter_limit
        self.node_limit = node_limit
        self.time_limit = time_limit
        self.match_limit_per_rule = match_limit_per_rule
        self.seed_candidates = seed_candidates
        self.scheduler = scheduler
        self.indexed = indexed
        self.incremental = incremental
        self.ban_length = ban_length
        self.eager_terms = eager_terms

    def _make_runner(self, egraph: EGraph, rules) -> Runner:
        return Runner(egraph, rules,
                      iter_limit=self.iter_limit, node_limit=self.node_limit,
                      time_limit=self.time_limit,
                      match_limit_per_rule=self.match_limit_per_rule,
                      scheduler=self.scheduler, indexed=self.indexed,
                      incremental=self.incremental, ban_length=self.ban_length)

    # ------------------------------------------------------------------

    def optimize(self, program: Expr, mappings: Mapping[str, Expr], *,
                 method: str = "egraph") -> OptimizationResult:
        """Optimize ``program`` for tensors stored according to ``mappings``."""
        start = time.perf_counter()
        program = to_debruijn_safe(program)
        mappings = {name: to_debruijn_safe(mapping) for name, mapping in mappings.items()}
        naive = compose(program, mappings)

        if method == "greedy":
            result = self._optimize_greedy(program, mappings, naive)
        elif method == "egraph":
            result = self._optimize_egraph(program, mappings, naive)
        else:
            raise OptimizationError(f"unknown optimization method {method!r}")
        result.optimization_time_ms = (time.perf_counter() - start) * 1_000.0
        return result

    # ------------------------------------------------------------------
    # greedy mode: strategy candidates + cost model
    # ------------------------------------------------------------------

    def _optimize_greedy(self, program: Expr, mappings: Mapping[str, Expr],
                         naive: Expr) -> OptimizationResult:
        model = CostModel(self.stats)
        candidates = strategies.candidate_plans(naive, self._symbol_ranks(mappings))
        costs = {name: model.plan_cost(plan) for name, plan in candidates.items()}
        chosen = min(costs, key=costs.get)
        return OptimizationResult(
            plan=candidates[chosen],
            cost=costs[chosen],
            naive_plan=naive,
            candidate_costs=costs,
            chosen_candidate=chosen,
        )

    # ------------------------------------------------------------------
    # e-graph mode: two-stage equality saturation + cost-based extraction
    # ------------------------------------------------------------------

    def _symbol_ranks(self, mappings: Mapping[str, Expr]) -> dict[str, int]:
        """Nesting rank per dictionary-valued symbol, for typed rule conditions.

        Logical tensor names (they stand for their storage mappings) and
        every physical symbol the statistics know a cardinality profile for;
        scalars are simply absent.  Rules that are only sound for scalar
        operands (the dict-factor rules) consult this map through
        ``EGraph.symbol_ranks``.
        """
        ranks: dict[str, int] = {}
        for name, card in self.stats.profiles.items():
            rank = card.depth()
            if rank > 0:
                ranks[name] = rank
        for name in mappings:
            ranks.setdefault(name, 1)
        return ranks

    def _optimize_egraph(self, program: Expr, mappings: Mapping[str, Expr],
                         naive: Expr) -> OptimizationResult:
        ranks = self._symbol_ranks(mappings)
        # Stage 1: storage-independent optimization of the tensor program.
        stage1_graph = EGraph(eager_terms=self.eager_terms)
        stage1_graph.symbol_ranks = ranks
        root1 = stage1_graph.add_expr(program)
        report1 = self._make_runner(stage1_graph, rule_sets.logical_rules()).run()
        logical_model = CostModel(self.stats, require_physical=False)
        stage1_plan, stage1_cost = logical_model.extract(stage1_graph, root1)
        stage1 = StageReport("storage-independent", report1, stage1_cost)

        # Compose the optimized program with the storage mappings.
        composed = compose(stage1_plan, mappings)

        # Stage 2: storage-aware optimization of the composed plan.
        stage2_graph = EGraph(eager_terms=self.eager_terms)
        stage2_graph.symbol_ranks = ranks
        root2 = stage2_graph.add_expr(composed)
        candidate_costs: dict[str, float] = {}
        if self.seed_candidates:
            greedy_model = CostModel(self.stats)
            for name, plan in strategies.candidate_plans(composed, ranks).items():
                candidate_costs[name] = greedy_model.plan_cost(plan)
                seeded = stage2_graph.add_expr(plan)
                stage2_graph.union(root2, seeded)
            stage2_graph.rebuild()
        report2 = self._make_runner(stage2_graph, rule_sets.all_rules()).run()

        physical_model = CostModel(self.stats, require_physical=True)
        try:
            plan, cost = physical_model.extract(stage2_graph, root2)
        except OptimizationError:
            # Saturation stopped before the physical-annotation rules reached
            # every dictionary constructor; fall back to the logical cost.
            relaxed_model = CostModel(self.stats, require_physical=False)
            plan, cost = relaxed_model.extract(stage2_graph, root2)
        stage2 = StageReport("storage-aware", report2, cost)

        chosen = None
        if candidate_costs:
            chosen = min(candidate_costs, key=candidate_costs.get)
        return OptimizationResult(
            plan=plan,
            cost=cost,
            naive_plan=composed,
            stage1=stage1,
            stage2=stage2,
            candidate_costs=candidate_costs,
            chosen_candidate=chosen,
        )


def optimize(program: Expr, mappings: Mapping[str, Expr], stats: Statistics,
             *, method: str = "egraph", **limits) -> OptimizationResult:
    """Convenience wrapper: build an :class:`Optimizer` and run it once."""
    return Optimizer(stats, **limits).optimize(program, mappings, method=method)
