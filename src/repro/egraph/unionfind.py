"""A union-find (disjoint set) structure over dense integer ids.

Used by the e-graph to maintain the equivalence relation over e-classes.
Path compression keeps finds effectively constant time; union-by-size keeps
trees shallow.
"""

from __future__ import annotations


class UnionFind:
    """Disjoint sets over the integers ``0 .. len(self) - 1``."""

    def __init__(self) -> None:
        self._parent: list[int] = []
        self._size: list[int] = []

    def __len__(self) -> int:
        return len(self._parent)

    def make_set(self) -> int:
        """Create a fresh singleton set and return its id."""
        identifier = len(self._parent)
        self._parent.append(identifier)
        self._size.append(1)
        return identifier

    def find(self, identifier: int) -> int:
        """Return the canonical representative of ``identifier``'s set."""
        root = identifier
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[identifier] != root:
            self._parent[identifier], identifier = root, self._parent[identifier]
        return root

    def union(self, a: int, b: int) -> int:
        """Merge the sets of ``a`` and ``b``; return the surviving representative."""
        root_a = self.find(a)
        root_b = self.find(b)
        if root_a == root_b:
            return root_a
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        return root_a

    def connected(self, a: int, b: int) -> bool:
        """True when ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)
