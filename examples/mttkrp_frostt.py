"""MTTKRP over a rank-3 sparse tensor stored in CSF (the paper's Fig. 1 workload).

The matricized tensor times Khatri-Rao product
``Q(i, j) = Σ_kl A(i,k,l) · B(k,j) · C(l,j)`` is the running example of the
paper.  This example builds a FROSTT-like sparse tensor, stores it in the
Compressed Sparse Fiber format plus CSR/CSC factor matrices, and compares the
plan STOREL picks against the naive plan and a Taco-like (fusion-only) plan.

Run with::

    python examples/mttkrp_frostt.py
"""

import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.baselines import StorelSystem, TacoLikeSystem, RelationalSystem, reference_result
from repro.core import Statistics, compose, strategies, CostModel
from repro.data.frostt import load_tensor
from repro.kernels import MTTKRP
from repro.storage import Catalog, CSCFormat, CSFFormat, CSRFormat
from repro.data.synthetic import random_sparse_matrix


def main() -> None:
    coords, values, dims = load_tensor("Facebook", scale=48)
    rank = 8
    b = random_sparse_matrix(dims[1], rank, 2.0 ** -5, seed=10)
    c = random_sparse_matrix(dims[2], rank, 2.0 ** -5, seed=11)

    catalog = (
        Catalog()
        .add(CSFFormat.from_coo("A", coords, values, dims))
        .add(CSRFormat.from_dense("B", b))
        .add(CSCFormat.from_dense("C", c))
    )
    print("Inputs:")
    print(catalog.describe())
    print()

    print("MTTKRP kernel in SDQLite:")
    print(" ", MTTKRP.source.strip())
    print()

    # Show what the optimizer considers: the candidate plans and their costs.
    stats = Statistics.from_catalog(catalog)
    naive = compose(MTTKRP.program, catalog.mappings())
    model = CostModel(stats)
    print("Candidate plans (estimated cost):")
    for name, plan in strategies.candidate_plans(naive).items():
        print(f"  {name:26s} {model.plan_cost(plan):14.1f}")
    print()

    expected = reference_result(MTTKRP, catalog)
    for system in (StorelSystem(), TacoLikeSystem(), RelationalSystem()):
        run = system.prepare(MTTKRP, catalog)
        start = time.perf_counter()
        result = run()
        elapsed = (time.perf_counter() - start) * 1_000
        status = "ok" if np.allclose(result, expected) else "WRONG RESULT"
        print(f"{system.name:12s} {elapsed:9.1f} ms   [{status}]")


if __name__ == "__main__":
    main()
