"""Quickstart: a session over flexible storage — optimize once, execute many.

The scenario from the paper's introduction: a sparse matrix ``A`` stored in
CSR, a dense vector ``X``, and the BATAX kernel
``Q(j) = Σ_ik β · A(i,j) · A(i,k) · X(k)``.  The Data Admin registers the
tensors once in a :class:`~repro.session.Session`; STOREL composes the
program with the storage mappings, rewrites it (factorization + fusion),
picks the cheapest plan with its cost model and compiles it to Python —
once, at ``prepare`` time.  Each ``execute`` then just re-binds the β
parameter and runs.

Run with::

    python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.session import Session
from repro.data.synthetic import random_dense_vector, random_sparse_matrix
from repro.storage import CSRFormat, DenseFormat


def main() -> None:
    size = 200
    a = random_sparse_matrix(size, size, density=0.02, seed=1)
    x = random_dense_vector(size, seed=2)

    # 1. The data administrator opens a session and registers how each
    #    tensor is stored — once.
    session = (
        Session()
        .register(CSRFormat.from_dense("A", a))
        .register(DenseFormat.from_dense("X", x))
        .set_scalar("beta", 2.0)
    )
    print("Registered tensors:")
    print(session.catalog.describe())
    print()
    print("Storage mapping for A (CSR), written in SDQLite:")
    print(" ", session.catalog["A"].mapping_source())
    print()

    # 2. The data scientist writes the tensor program against logical names
    #    and prepares it: parse -> statistics -> cost-based optimization ->
    #    compilation happen here, exactly once.
    program = (
        "sum(<i, Ai> in A) sum(<j, Aij> in Ai) sum(<k, Aik> in Ai) "
        "{ j -> beta * Aij * Aik * X(k) }"
    )
    statement = session.prepare(program, dense_shape=(size,))

    # 3. Execution is now just parameter binding: sweep β without ever
    #    re-optimizing.
    for beta in (0.5, 1.0, 2.0):
        result = statement.execute(beta=beta)
        expected = beta * (a.T @ (a @ x))
        print(f"beta={beta:4.1f}: result matches NumPy oracle:",
              np.allclose(result, expected))
    print()
    print("Candidate plan costs considered by the optimizer:")
    for name, cost in sorted(statement.optimization.candidate_costs.items(),
                             key=lambda kv: kv[1]):
        print(f"  {name:26s} {cost:12.1f}")
    print()
    print("Generated Python for the chosen plan:")
    print(statement.plan_source)


if __name__ == "__main__":
    main()
