"""High-level convenience API: run an SDQLite tensor program end to end.

This is the "one call" interface used by the examples and the quickstart in
the README::

    import numpy as np
    from repro import storel
    from repro.storage import Catalog, CSRFormat, DenseFormat

    catalog = (Catalog()
               .add(CSRFormat.from_dense("A", A))
               .add(DenseFormat.from_dense("X", x))
               .add_scalar("beta", 2.0))
    result = storel.run(
        "sum(<(i,j), a> in A, <k, x> in X) if (j == k) then { i -> beta * a * x }",
        catalog)

Every function here is a thin wrapper over a throwaway
:class:`repro.session.Session`, so all entry points share one pipeline:
parse, derive statistics from the catalog, run the cost-based optimizer,
lower the chosen plan on the selected execution backend
(``backend="compile"`` by default; ``"interpret"`` and ``"vectorize"`` are
the alternatives — see ``docs/backends.md``), execute, and return the result
(a scalar or a nested dict, or a dense NumPy array when ``dense_shape`` is
given).  Lowered plans are cached process-wide, so repeated calls with the
same plan shape skip re-compilation — but each call still pays for parsing,
statistics and optimization.  When the same program runs many times over one
catalog, hold a :class:`~repro.session.Session` open and use
:meth:`~repro.session.Session.prepare` instead (see ``docs/api.md``).
"""

from __future__ import annotations

from typing import Any, Mapping

from .sdqlite.ast import Expr
from .session import RunOutcome, Session
from .storage.catalog import Catalog

__all__ = ["RunOutcome", "advise", "run", "run_detailed", "explain"]


def run_detailed(program: "str | Expr", catalog: Catalog, *, method: str = "greedy",
                 backend: str = "compile", dense_shape: tuple[int, ...] | None = None,
                 optimizer_options: Mapping[str, Any] | None = None) -> RunOutcome:
    """Optimize and execute ``program`` over ``catalog``; return value and plan details.

    Parameters
    ----------
    program:
        SDQLite source text or a parsed expression over logical tensor names.
    catalog:
        The registered tensors (storage formats + statistics) and scalars.
    method:
        Optimization method: ``"greedy"`` (cheapest strategy-generated
        candidate, fast) or ``"egraph"`` (full two-stage equality
        saturation).
    backend:
        Execution backend: ``"compile"`` (generated Python loops, default),
        ``"interpret"`` (reference interpreter) or ``"vectorize"``
        (whole-array NumPy with automatic loop fallback).
    dense_shape:
        When given, the result is densified into a NumPy array (or scalar)
        of this shape.
    optimizer_options:
        Extra keyword arguments forwarded to
        :class:`~repro.core.optimizer.Optimizer` (e.g. ``iter_limit``).
    """
    return Session(catalog, method=method, backend=backend).run_detailed(
        program, dense_shape=dense_shape, optimizer_options=optimizer_options)


def run(program: "str | Expr", catalog: Catalog, *, method: str = "greedy",
        backend: str = "compile", dense_shape: tuple[int, ...] | None = None,
        optimizer_options: Mapping[str, Any] | None = None) -> Any:
    """Optimize and execute ``program`` over ``catalog``; return just the value.

    ``backend`` selects the execution backend — ``"compile"`` (default),
    ``"interpret"`` or ``"vectorize"``; ``optimizer_options`` forwards
    optimizer/engine knobs (limits, ``scheduler``, ``indexed``,
    ``incremental``); see :func:`run_detailed` for all parameters.
    """
    return run_detailed(program, catalog, method=method, backend=backend,
                        dense_shape=dense_shape,
                        optimizer_options=optimizer_options).result


def advise(programs, catalog: Catalog, *, apply: bool = False, **kwargs):
    """One-shot workload-driven format advice: which storage should these tensors use?

    ``programs`` is the workload — one SDQLite program, a list of programs,
    ``(program, weight)`` pairs, or :class:`repro.advisor.WorkloadQuery`
    rows.  Enumerates the storage formats that can legally hold each
    referenced tensor, estimates every program's optimized plan cost under
    each candidate configuration (the paper's Sec. 5 cost model), and
    returns a ranked :class:`repro.advisor.Recommendation`.  With
    ``apply=True`` the top recommendation is additionally executed against
    ``catalog`` in place (tensors re-stored via ``storage.convert``, catalog
    epochs bumped).  Keyword arguments are forwarded to
    :meth:`repro.session.Session.advise` (e.g. ``measure=True`` to validate
    the top-k estimates with real executions on the vectorized backend).

    Example::

        recommendation = storel.advise(program, catalog, measure=True)
        print(recommendation.summary())
    """
    session = Session(catalog)
    recommendation = session.advise(programs, **kwargs)
    if apply:
        session.apply_recommendation(recommendation)
    return recommendation


def explain(program: "str | Expr", catalog: Catalog, *, method: str = "greedy",
            optimizer_options: Mapping[str, Any] | None = None) -> str:
    """Return a human-readable description of the plan STOREL chooses.

    Routed through the same session pipeline as :func:`run`, so it accepts
    (and honours) the same ``optimizer_options``.
    """
    return Session(catalog, method=method).explain(
        program, optimizer_options=optimizer_options)
