"""Property tests for the typed-buffer export of every storage format.

The typed backend consumes flat columnar buffers; each format exports its
physical arrays via :meth:`StorageFormat.to_buffers` and can be rebuilt via
:meth:`StorageFormat.from_buffers`.  The load-bearing invariant is the
round trip

    ``from_buffers(name, fmt.to_buffers(), fmt.shape).to_dense() == fmt.to_dense()``

for every format, on arbitrary tensors — including tensors built from
duplicate coordinates (which the constructors must sum), empty tensors
(zero non-zeros must survive the trip without shape loss), and
single-element tensors (the smallest non-trivial segment structure).
"""

import numpy as np
import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.execution.buffers import BufferLevels  # noqa: E402
from repro.storage import FORMATS, SPECIAL_FORMATS, build_format  # noqa: E402
from repro.storage.physical import (  # noqa: E402
    PhysicalArray,
    PhysicalHashMap,
    PhysicalTrie,
)

#: kind -> ranks the format accepts (mirrors each ``candidates_for``).
FORMAT_RANKS = {
    "dense": (1, 2, 3),
    "coo": (1, 2, 3),
    "csr": (2,),
    "csc": (2,),
    "dcsr": (2,),
    "csf": (3,),
    "dok": (1, 2, 3),
    "trie": (1, 2, 3),
}


def _roundtrip(fmt):
    rebuilt = type(fmt).from_buffers(fmt.name, fmt.to_buffers(), fmt.shape)
    np.testing.assert_allclose(rebuilt.to_dense(), fmt.to_dense())
    assert rebuilt.shape == fmt.shape


def _random_dense(seed, shape, density=0.4):
    rng = np.random.default_rng(seed)
    mask = rng.random(shape) < density
    return np.round(rng.standard_normal(shape), 3) * mask


@st.composite
def kind_and_dense(draw):
    kind = draw(st.sampled_from(sorted(FORMAT_RANKS)))
    rank = draw(st.sampled_from(FORMAT_RANKS[kind]))
    shape = tuple(draw(st.integers(min_value=1, max_value=7))
                  for _ in range(rank))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    density = draw(st.sampled_from((0.0, 0.2, 0.6, 1.0)))
    return kind, _random_dense(seed, shape, density)


@settings(max_examples=60, deadline=None)
@given(kind_and_dense())
def test_buffers_roundtrip_random(case):
    kind, dense = case
    _roundtrip(build_format(kind, "T", dense))


@st.composite
def kind_and_duplicate_coo(draw):
    """Coordinate data with intentional duplicates (constructors must sum)."""
    kind = draw(st.sampled_from(sorted(FORMAT_RANKS)))
    rank = draw(st.sampled_from(FORMAT_RANKS[kind]))
    shape = tuple(draw(st.integers(min_value=1, max_value=5))
                  for _ in range(rank))
    base = draw(st.lists(
        st.tuples(*(st.integers(min_value=0, max_value=dim - 1)
                    for dim in shape)),
        min_size=1, max_size=8))
    coords = np.array(base + base, dtype=np.int64).reshape(-1, rank)
    values = np.arange(1.0, coords.shape[0] + 1)
    return kind, coords, values, shape


@settings(max_examples=60, deadline=None)
@given(kind_and_duplicate_coo())
def test_buffers_roundtrip_duplicate_coords(case):
    kind, coords, values, shape = case
    _roundtrip(FORMATS[kind].from_coo("T", coords, values, shape))


@pytest.mark.parametrize("kind", sorted(FORMAT_RANKS))
def test_buffers_roundtrip_empty(kind):
    for rank in FORMAT_RANKS[kind]:
        _roundtrip(build_format(kind, "E", np.zeros((3,) * rank)))


@pytest.mark.parametrize("kind", sorted(FORMAT_RANKS))
def test_buffers_roundtrip_single_element(kind):
    for rank in FORMAT_RANKS[kind]:
        dense = np.zeros((4,) * rank)
        dense[(2,) * rank] = 1.5
        _roundtrip(build_format(kind, "S", dense))


def test_special_formats_roundtrip_via_base_export():
    lower = np.tril(np.arange(16.0).reshape(4, 4))
    band = np.diag(np.arange(1.0, 6.0)) + np.diag(np.arange(1.0, 5.0), k=-1)
    square = _random_dense(7, (4, 4))
    for kind, dense in [("lower_triangular", lower), ("band", band),
                        ("zorder", square)]:
        _roundtrip(SPECIAL_FORMATS[kind].from_dense("T", dense))


def test_physical_array_export_is_flat_view():
    arr = PhysicalArray("a", np.arange(5.0))
    buffers = arr.to_buffers()
    assert list(buffers) == ["val"]
    np.testing.assert_array_equal(buffers["val"], np.arange(5.0))


def test_physical_hashmap_export_is_sorted_coo():
    hm = PhysicalHashMap("h", {(2, 0): 4.0, (0, 1): 2.0, (2, 2): 0.0}, (3, 3))
    buffers = hm.to_buffers()
    np.testing.assert_array_equal(buffers["idx1"], [0, 2])
    np.testing.assert_array_equal(buffers["idx2"], [1, 0])
    np.testing.assert_array_equal(buffers["val"], [2.0, 4.0])


def test_physical_trie_export_matches_buffer_levels():
    entries = {(0, 1): 2.0, (2, 0): 4.0, (2, 2): 5.0}
    trie = PhysicalTrie.from_entries("t", entries, (3, 3))
    buffers = trie.to_buffers()
    levels = BufferLevels(
        [buffers["keys1"], buffers["keys2"]],
        [buffers["seg1"], buffers["seg2"]],
        buffers["val"])
    coords = levels.leaf_coords()
    rebuilt = {tuple(map(int, c)): v
               for c, v in zip(coords, levels.values)}
    assert rebuilt == entries
