"""Experiment definitions: one builder per table / figure of the paper's Sec. 6.

Each function assembles the datasets, storage formats (Table 3 column
"STOREL / Taco"), systems and parameters of one experiment and returns the
raw measurements; the benchmark modules under ``benchmarks/`` wrap them in
pytest-benchmark cases and print the resulting tables.

The dataset scale factors default to small values so that the whole suite
runs in minutes on a laptop; they can be raised to approach the paper's
original sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines import (
    FixedPlanSystem,
    NumpySystem,
    RelationalSystem,
    ScipySystem,
    StorelSystem,
    System,
    TacoLikeSystem,
)
from ..data import frostt, suitesparse
from ..data.synthetic import random_dense_vector, random_sparse_matrix
from ..kernels import BATAX, BATAX_NESTED, MMM, MTTKRP, SUM_MMM, TTM
from ..storage import (
    Catalog,
    CSCFormat,
    CSFFormat,
    CSRFormat,
    DenseFormat,
    DOKFormat,
    TrieFormat,
    build_format,
)
from .harness import Measurement, measure

#: Density of the synthetically generated "other" operands (the paper uses 2^-5).
OTHER_DENSITY = 2.0 ** -5


# ---------------------------------------------------------------------------
# Table 3: best storage formats per kernel (for STOREL / Taco in this repo)
# ---------------------------------------------------------------------------

#: kernel -> {tensor: format} used for the Fig. 7 runs (paper's Table 3, STOREL column).
BEST_FORMATS: dict[str, dict[str, str]] = {
    "MMM": {"A": "csr", "B": "csr"},
    "SUMMM": {"A": "csc", "B": "csr"},
    "BATAX": {"A": "csr", "X": "dense"},
    "TTM": {"A": "csf", "B": "csc"},
    "MTTKRP": {"A": "csf", "B": "csr", "C": "csc"},
}


# ---------------------------------------------------------------------------
# Catalog builders
# ---------------------------------------------------------------------------


def matrix_kernel_catalog(kernel_name: str, dataset: str, *, scale: int = 64,
                          other_cols: int = 32, seed: int = 101) -> Catalog:
    """Catalog for the matrix kernels (MMM, ΣMMM, BATAX) on a Table-2 matrix."""
    a = suitesparse.load_matrix(dataset, scale=scale)
    formats = BEST_FORMATS[kernel_name]
    catalog = Catalog()
    catalog.add(build_format(formats["A"], "A", a))
    if kernel_name in ("MMM", "SUMMM"):
        b = random_sparse_matrix(a.shape[1], other_cols, OTHER_DENSITY, seed=seed)
        catalog.add(build_format(formats["B"], "B", b))
    if kernel_name == "BATAX":
        x = random_dense_vector(a.shape[1], seed=seed)
        catalog.add(DenseFormat.from_dense("X", x))
        catalog.add_scalar("beta", 0.5)
    return catalog


def tensor_kernel_catalog(kernel_name: str, dataset: str, *, scale: int = 24,
                          rank: int = 8, seed: int = 202) -> Catalog:
    """Catalog for the rank-3 kernels (TTM, MTTKRP) on a FROSTT stand-in."""
    coords, values, dims = frostt.load_tensor(dataset, scale=scale)
    formats = BEST_FORMATS[kernel_name]
    catalog = Catalog()
    catalog.add(CSFFormat.from_coo("A", coords, values, dims))
    if kernel_name == "TTM":
        b = random_sparse_matrix(rank, dims[2], OTHER_DENSITY, seed=seed)
        catalog.add(build_format(formats["B"], "B", b))
    if kernel_name == "MTTKRP":
        b = random_sparse_matrix(dims[1], rank, OTHER_DENSITY, seed=seed)
        c = random_sparse_matrix(dims[2], rank, OTHER_DENSITY, seed=seed + 1)
        catalog.add(build_format(formats["B"], "B", b))
        catalog.add(build_format(formats["C"], "C", c))
    return catalog


def synthetic_catalog(kernel_name: str, density: float, *, rows: int = 256,
                      cols: int = 256, storage: str = "sparse", seed: int = 7) -> Catalog:
    """Catalog for the density sweeps of Fig. 8 (synthetic square matrices)."""
    a = random_sparse_matrix(rows, cols, density, seed=seed)
    catalog = Catalog()
    matrix_format = BEST_FORMATS[kernel_name]["A"] if storage == "sparse" else "dense"
    catalog.add(build_format(matrix_format, "A", a))
    if kernel_name in ("MMM", "SUMMM"):
        b = random_sparse_matrix(cols, cols, density, seed=seed + 1)
        b_format = BEST_FORMATS[kernel_name]["B"] if storage == "sparse" else "dense"
        catalog.add(build_format(b_format, "B", b))
    if kernel_name == "BATAX":
        catalog.add(DenseFormat.from_dense("X", random_dense_vector(cols, seed=seed + 2)))
        catalog.add_scalar("beta", 0.5)
    return catalog


# ---------------------------------------------------------------------------
# Fig. 7: end-to-end comparison on the real-world stand-ins
# ---------------------------------------------------------------------------


def fig7_systems(kernel_name: str) -> list[System]:
    """The systems compared in Fig. 7 for a given kernel."""
    systems: list[System] = [StorelSystem(), TacoLikeSystem()]
    if kernel_name in ("MMM", "SUMMM", "BATAX"):
        systems += [NumpySystem(), ScipySystem(), RelationalSystem()]
    else:
        systems += [RelationalSystem()]
    return systems


def fig7_measurements(kernel_name: str, *, datasets: list[str] | None = None,
                      scale: int = 64, tensor_scale: int = 24,
                      repeats: int = 3) -> list[Measurement]:
    """Run the Fig. 7 experiment for one kernel over the real-world stand-ins."""
    kernel = {"MMM": MMM, "SUMMM": SUM_MMM, "BATAX": BATAX, "TTM": TTM,
              "MTTKRP": MTTKRP}[kernel_name]
    measurements: list[Measurement] = []
    if kernel_name in ("MMM", "SUMMM", "BATAX"):
        names = datasets or suitesparse.matrix_names()
        for dataset in names:
            catalog = matrix_kernel_catalog(kernel_name, dataset, scale=scale)
            for system in fig7_systems(kernel_name):
                measurements.append(measure(system, kernel, catalog,
                                            dataset=dataset, repeats=repeats))
    else:
        names = datasets or frostt.tensor_names()
        for dataset in names:
            catalog = tensor_kernel_catalog(kernel_name, dataset, scale=tensor_scale)
            for system in fig7_systems(kernel_name):
                measurements.append(measure(system, kernel, catalog,
                                            dataset=dataset, repeats=repeats))
    return measurements


# ---------------------------------------------------------------------------
# Fig. 8: storage format × density sweeps
# ---------------------------------------------------------------------------


def fig8_measurements(kernel_name: str, densities: list[float], *, rows: int = 256,
                      repeats: int = 3) -> list[Measurement]:
    """Sparse-vs-dense storage sweep for BATAX / ΣMMM / MMM (Fig. 8)."""
    kernel = {"MMM": MMM, "SUMMM": SUM_MMM, "BATAX": BATAX}[kernel_name]
    measurements = []
    for density in densities:
        label = f"density=2^{np.log2(density):.0f}" if density > 0 else "density=0"
        for storage in ("sparse", "dense"):
            catalog = synthetic_catalog(kernel_name, density, rows=rows, cols=rows,
                                        storage=storage)
            for system in (StorelSystem(), TacoLikeSystem()):
                measurement = measure(system, kernel, catalog,
                                      dataset=f"{label}/{storage}", repeats=repeats)
                measurement.system = f"{measurement.system} ({storage})"
                measurements.append(measurement)
        catalog = synthetic_catalog(kernel_name, density, rows=rows, cols=rows,
                                    storage="sparse")
        for system in (ScipySystem(), NumpySystem()):
            measurements.append(measure(system, kernel, catalog,
                                        dataset=f"{label}/sparse", repeats=repeats))
    return measurements


# ---------------------------------------------------------------------------
# Fig. 9: contribution of factorization and fusion rules (BATAX ablation)
# ---------------------------------------------------------------------------


def fig9_variants() -> dict[str, tuple[str, str]]:
    """Ablation variants: name -> (storage for A, plan variant)."""
    return {
        "Unopt., Hash": ("trie", "naive"),
        "Part. Fact., Hash": ("trie", "factorized"),
        "Fully Fact., Hash": ("trie", "fused+factorized"),
        "Fully Fact., CSR, Unfused": ("csr", "factorized"),
        "Fully Fact., CSR, Fused": ("csr", "fused+factorized"),
    }


def fig9_measurements(densities: list[float], *, rows: int = 128,
                      repeats: int = 3) -> list[Measurement]:
    """The BATAX rule-ablation study of Fig. 9 (nested per-row kernel)."""
    measurements = []
    for density in densities:
        label = f"density=2^{np.log2(density):.0f}"
        a = random_sparse_matrix(rows, rows, density, seed=31)
        x = random_dense_vector(rows, seed=32)
        for variant_name, (storage, plan_variant) in fig9_variants().items():
            catalog = Catalog()
            if storage == "trie":
                catalog.add(TrieFormat.from_dense("A", a))
            else:
                catalog.add(CSRFormat.from_dense("A", a))
            catalog.add(DenseFormat.from_dense("X", x))
            catalog.add_scalar("beta", 0.5)
            system = FixedPlanSystem(variant=plan_variant)
            measurement = measure(system, BATAX_NESTED, catalog,
                                  dataset=label, repeats=repeats)
            measurement.system = variant_name
            measurements.append(measurement)
    return measurements


# ---------------------------------------------------------------------------
# Table 4: optimization (Egg) metrics; Fig. 10: optimization overhead
# ---------------------------------------------------------------------------


def table4_rows(*, iter_limit: int = 6, node_limit: int = 4000) -> list[dict]:
    """Egg compilation metrics for both optimization stages of every kernel."""
    from ..core.optimizer import Optimizer
    from ..core.statistics import Statistics

    rows = []
    configurations = {
        "BATAX": ("BATAX", matrix_kernel_catalog("BATAX", "cant", scale=256)),
        "SUMMM": ("SUMMM", matrix_kernel_catalog("SUMMM", "cant", scale=256)),
        "MTTKRP": ("MTTKRP", tensor_kernel_catalog("MTTKRP", "NIPS", scale=64)),
        "MMM": ("MMM", matrix_kernel_catalog("MMM", "cant", scale=256)),
        "TTM": ("TTM", tensor_kernel_catalog("TTM", "NIPS", scale=64)),
    }
    kernels = {"MMM": MMM, "SUMMM": SUM_MMM, "BATAX": BATAX, "TTM": TTM, "MTTKRP": MTTKRP}
    for label, (kernel_name, catalog) in configurations.items():
        stats = Statistics.from_catalog(catalog)
        optimizer = Optimizer(stats, iter_limit=iter_limit, node_limit=node_limit)
        result = optimizer.optimize(kernels[kernel_name].program, catalog.mappings(),
                                    method="egraph")
        for stage_row in result.table4_rows():
            rows.append({"kernel": label, **stage_row})
    return rows


#: Estimated-cost threshold above which a Fig. 10 variant is reported as a
#: timeout instead of being executed (the paper uses a 5-minute wall-clock
#: timeout; a cost threshold plays the same role without hanging the suite).
FIG10_COST_TIMEOUT = 4.0e8


def fig10_measurements(dimensions: list[int], *, repeats: int = 1,
                       cost_timeout: float = FIG10_COST_TIMEOUT) -> list[dict]:
    """Total (optimization + run) time of BATAX variants as the dimension grows."""
    import time

    from ..core.compose import compose
    from ..core.cost import CostModel
    from ..core.optimizer import Optimizer
    from ..core.statistics import Statistics
    from ..core import strategies

    rows = []
    for dimension in dimensions:
        # The paper uses a 10^2 x N matrix; 32 rows keep the pure-Python naive
        # plan measurable at the smallest N.
        a = random_sparse_matrix(32, dimension, 2.0 ** -4, seed=41)
        x = random_dense_vector(dimension, seed=42)
        catalog = Catalog()
        catalog.add(CSRFormat.from_dense("A", a))
        catalog.add(DenseFormat.from_dense("X", x))
        catalog.add_scalar("beta", 0.5)
        stats = Statistics.from_catalog(catalog)
        model = CostModel(stats)
        naive = compose(BATAX.program, catalog.mappings())
        candidates = strategies.candidate_plans(naive)
        variants = {
            "Unoptimized": ("naive", False),
            "Opt. Phase 1": ("factorized", False),
            "Fully Optimized": ("fused+factorized", True),
        }
        for variant_name, (plan_variant, run_full_optimizer) in variants.items():
            start = time.perf_counter()
            if run_full_optimizer:
                optimizer = Optimizer(stats, iter_limit=5, node_limit=2500)
                optimizer.optimize(BATAX.program, catalog.mappings(), method="egraph")
            opt_ms = (time.perf_counter() - start) * 1_000.0
            estimated = model.plan_cost(candidates[plan_variant])
            if estimated > cost_timeout:
                rows.append({
                    "N": dimension, "variant": variant_name, "opt_ms": round(opt_ms, 2),
                    "run_ms": None, "total_ms": None, "status": "timeout (estimated)",
                })
                continue
            measurement = measure(FixedPlanSystem(variant=plan_variant), BATAX, catalog,
                                  dataset=f"N={dimension}", repeats=repeats)
            total = opt_ms + (measurement.mean_ms or float("nan"))
            rows.append({
                "N": dimension,
                "variant": variant_name,
                "opt_ms": round(opt_ms, 2),
                "run_ms": measurement.mean_ms,
                "total_ms": round(total, 2),
                "status": measurement.status,
            })
    return rows
