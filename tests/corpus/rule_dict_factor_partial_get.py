"""Shrunk fuzz repro (seed 1000000476): a partial lookup ``T1(3)`` over a
rank-2 tensor is itself a dictionary, so factoring it across a ``{k -> ...}``
constructor is unsound — the type condition must follow ranks through
``Get`` nodes."""
PROGRAM = "{ 1 -> 1.27 } * T1(3)"
TENSORS = {"T1": [[0.2, 0.0], [0.0, 0.7], [0.4, 0.0], [0.0, 0.9]]}
FORMATS = {"T1": "dense"}
SCALARS = {}
CONFIGS = [("egraph", "interpret"), ("egraph", "compile")]
