"""Cost-based adaptation to sparsity and storage (the Fig. 8 / Fig. 9 story).

The same BATAX program is optimized for the same matrix stored two ways (CSR
and a hash trie) and at several densities.  The example prints which plan the
cost-based optimizer picks in each configuration and how long each plan
variant actually takes, demonstrating that the choice tracks the data — the
whole point of a cost-based (rather than purely syntactic) optimizer.

Run with::

    python examples/sparsity_adaptive.py
"""

import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.baselines import FixedPlanSystem, reference_result
from repro.core import Optimizer, Statistics
from repro.data.synthetic import random_dense_vector, random_sparse_matrix
from repro.kernels import BATAX_NESTED
from repro.storage import Catalog, CSRFormat, DenseFormat, TrieFormat


def build_catalog(a: np.ndarray, x: np.ndarray, storage: str) -> Catalog:
    catalog = Catalog()
    if storage == "csr":
        catalog.add(CSRFormat.from_dense("A", a))
    else:
        catalog.add(TrieFormat.from_dense("A", a))
    catalog.add(DenseFormat.from_dense("X", x))
    catalog.add_scalar("beta", 0.5)
    return catalog


def main() -> None:
    size = 128
    x = random_dense_vector(size, seed=5)
    print(f"{'density':>10s} {'storage':>8s} {'chosen plan':>24s} "
          f"{'naive ms':>10s} {'fused ms':>10s} {'fact. ms':>10s} {'both ms':>10s}")
    for exponent in (-8, -5, -2):
        density = 2.0 ** exponent
        a = random_sparse_matrix(size, size, density, seed=6)
        for storage in ("csr", "trie"):
            catalog = build_catalog(a, x, storage)
            stats = Statistics.from_catalog(catalog)
            decision = Optimizer(stats).optimize(
                BATAX_NESTED.program, catalog.mappings(), method="greedy")
            timings = {}
            expected = reference_result(BATAX_NESTED, catalog)
            for variant in ("naive", "fused", "factorized", "fused+factorized"):
                run = FixedPlanSystem(variant=variant).prepare(BATAX_NESTED, catalog)
                start = time.perf_counter()
                result = run()
                timings[variant] = (time.perf_counter() - start) * 1_000
                assert np.allclose(result, expected)
            print(f"{density:10.4f} {storage:>8s} {decision.chosen_candidate:>24s} "
                  f"{timings['naive']:10.1f} {timings['fused']:10.1f} "
                  f"{timings['factorized']:10.1f} {timings['fused+factorized']:10.1f}")


if __name__ == "__main__":
    main()
