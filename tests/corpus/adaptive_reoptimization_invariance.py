"""Seeded adaptive repro (fuzz seed 7000000061): result invariance under feedback-driven re-optimization.

Not a shrunk failure -- a fixed-seed pin of the adaptive loop: with
profiling on every execution and a 1.05 re-optimize threshold, this
sum-with-guard over a band tensor misestimates (default selectivity vs.
actual), refines its statistics several times, and transparently
re-prepares mid-stream while sparse updates drift ``T0`` -- and every
result, before and after each re-preparation, must equal the serial
reference at that state.
"""
PROGRAM = '(sum(<k1, v2> in T0) (if (k1 <= k1) then let x6 = if (k1 + 2 != 2 && k1 + 2 >= 2) then let x5 = sum(<k3, v4> in v2) { 0 -> 0 } in v2 in k1) * k1) + 0.32 - c0 - 2'
TENSORS = {'T0': [[0.15109728623079438, 0.0], [0.25094844408515343, 0.16493140491617853]]}
FORMATS = {'T0': 'band'}
SCALARS = {'c0': 1.0}
CONFIGS = [('greedy', 'compile'), ('egraph', 'vectorize')]
MODE = 'adaptive'
DELTAS = [{'name': 'T0', 'coords': [[1, 0], [0, 0]], 'values': [-0.25094844408515343, 2.0]}, {'name': 'T0', 'coords': [[0, 0], [1, 1]], 'values': [-2.0, 1.0]}, {'name': 'T0', 'coords': [[0, 0]], 'values': [-2.0]}]
