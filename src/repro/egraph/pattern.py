"""Pattern matching (e-matching) over the e-graph.

A pattern is an SDQLite expression template in De Bruijn form whose leaves
may be *pattern variables*.  Pattern variables are written as
:class:`~repro.sdqlite.ast.Var` nodes whose name starts with ``?`` (so
patterns can be built with the ordinary AST constructors, or parsed from
source text such as ``"?a * (?b + ?c)"``).

Matching a pattern against an e-class yields substitutions mapping pattern
variable names to e-class ids; a pattern can also be *instantiated* under a
substitution, adding the corresponding nodes to the e-graph.

Matching is generator-based throughout: :meth:`Pattern.search_iter` yields
``(class id, substitution)`` pairs lazily so a caller with a match budget
stops the search early instead of materializing (and then truncating) every
match, and it accepts an explicit candidate-class list so the runner can
probe only classes the operator index and the dirty set nominate.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from ..sdqlite.ast import Expr, Var, children
from ..sdqlite.errors import OptimizationError
from ..sdqlite.parser import parse_expr
from .egraph import EGraph
from .language import ENode, Label, ast_to_label, label_to_ast

Subst = dict[str, int]


@dataclass(frozen=True)
class PatternNode:
    """Internal compiled form: either a variable or an operator with children."""

    variable: str | None
    label: tuple | None
    children: tuple["PatternNode", ...]

    @property
    def is_variable(self) -> bool:
        return self.variable is not None


class Pattern:
    """A compiled pattern ready for e-matching and instantiation."""

    def __init__(self, template: Expr | str):
        if isinstance(template, str):
            template = parse_pattern(template)
        self.template = template
        self.root = _compile(template)
        self.variables = sorted(_collect_variables(self.root))

    @property
    def root_label(self) -> Label | None:
        """The operator label a matching class must contain, or ``None`` when
        the pattern root is a variable (every class is a candidate)."""
        return self.root.label

    def search_class(self, egraph: EGraph, identifier: int) -> list[Subst]:
        """All substitutions under which this pattern matches the given e-class."""
        return list(_match_class(egraph, self.root, egraph.find(identifier), {}))

    def search_iter(self, egraph: EGraph,
                    candidates: Iterable[int] | None = None, *,
                    use_index: bool = True) -> Iterator[tuple[int, Subst]]:
        """Lazily yield ``(class id, substitution)`` matches.

        ``candidates`` restricts the search to the given class ids (they are
        canonicalized and deduplicated here); ``None`` probes the e-graph's
        operator index for the pattern's root label — or scans every class
        when the root is a variable or ``use_index`` is False (the textbook
        full rescan, kept for the before/after benchmark).
        """
        find = egraph.find
        if candidates is None:
            if use_index and self.root.label is not None:
                identifiers = egraph.classes_with_label(self.root.label)
            else:
                identifiers = [eclass.identifier for eclass in list(egraph.classes())]
        else:
            identifiers = list(dict.fromkeys(find(identifier) for identifier in candidates))
        for identifier in identifiers:
            canonical = find(identifier)
            for subst in _match_class(egraph, self.root, canonical, {}):
                yield canonical, subst

    def search(self, egraph: EGraph) -> list[tuple[int, Subst]]:
        """All (class id, substitution) pairs where the pattern matches.

        Scans every class (no index probe) — kept as the reference
        implementation; the runner uses :meth:`search_iter`.
        """
        matches: list[tuple[int, Subst]] = []
        for eclass in list(egraph.classes()):
            for subst in self.search_class(egraph, eclass.identifier):
                matches.append((eclass.identifier, subst))
        return matches

    def instantiate(self, egraph: EGraph, subst: Mapping[str, int]) -> int:
        """Add this pattern to the e-graph with variables replaced per ``subst``."""
        return _instantiate(egraph, self.root, subst)

    def __repr__(self) -> str:
        return f"Pattern({self.template})"


#: Token-initial pattern-variable / De Bruijn markers.  A marker only counts
#: when it is *not* glued to the tail of an identifier or number, so symbol
#: text containing ``?`` or ``%`` mid-token is left alone (and rejected by the
#: tokenizer) instead of being silently rewritten.
_PVAR_RE = re.compile(r"(?<![A-Za-z0-9_])\?([A-Za-z_][A-Za-z0-9_]*)")
_IDX_RE = re.compile(r"(?<![A-Za-z0-9_])%(\d+)")


def parse_pattern(source: str) -> Expr:
    """Parse pattern source text; ``?x`` identifiers become pattern variables.

    The text is ordinary SDQLite except that identifiers may be prefixed with
    ``?``; bound variables must be written as De Bruijn indices ``%k`` — to
    keep patterns unambiguous no named binders are allowed.
    """
    # The SDQLite tokenizer has no '?' token, so encode pattern variables as a
    # reserved symbol prefix before parsing and decode afterwards.  Only
    # token-initial markers are encoded; any other use of '?' or '%' reaches
    # the tokenizer verbatim and raises a ParseError there.
    if "__pvar_" in source or "__idx_" in source:
        raise OptimizationError(
            "pattern source may not contain the reserved prefixes '__pvar_'/'__idx_'")
    encoded = _PVAR_RE.sub(r"__pvar_\1", source)
    encoded = _IDX_RE.sub(r"__idx_\1", encoded)
    expr = parse_expr(encoded)
    return _decode(expr)


def _decode(expr: Expr) -> Expr:
    from ..sdqlite.ast import Idx, Sym, rebuild

    if isinstance(expr, (Sym, Var)):
        name = expr.name
        if name.startswith("__pvar_"):
            return Var("?" + name[len("__pvar_"):])
        if name.startswith("__idx_"):
            return Idx(int(name[len("__idx_"):]))
        return expr
    kids = children(expr)
    if not kids:
        return expr
    return rebuild(expr, [_decode(child) for child in kids])


def _compile(template: Expr) -> PatternNode:
    if isinstance(template, Var):
        if not template.name.startswith("?"):
            raise OptimizationError(
                f"named variable {template.name!r} in a pattern; use ?names or %indices"
            )
        return PatternNode(template.name, None, ())
    # Binder *names* are ignored by labels, so templates may use sum(<k,v> ...)
    # syntax as long as bound occurrences are written as De Bruijn indices.
    label = ast_to_label(template)
    kids = tuple(_compile(child) for child in children(template))
    return PatternNode(None, label, kids)


def _collect_variables(node: PatternNode) -> set[str]:
    if node.is_variable:
        return {node.variable}
    out: set[str] = set()
    for child in node.children:
        out |= _collect_variables(child)
    return out


def _match_class(egraph: EGraph, node: PatternNode, identifier: int,
                 subst: Subst) -> Iterator[Subst]:
    identifier = egraph.find(identifier)
    if node.is_variable:
        bound = subst.get(node.variable)
        if bound is None:
            extended = dict(subst)
            extended[node.variable] = identifier
            yield extended
        elif egraph.find(bound) == identifier:
            yield dict(subst)
        return
    for enode in egraph[identifier].nodes:
        if enode.label != node.label or len(enode.children) != len(node.children):
            continue
        yield from _match_children(egraph, node.children, enode.children, 0, subst)


def _match_children(egraph: EGraph, pattern_children, class_children, position,
                    subst: Subst) -> Iterator[Subst]:
    if position == len(pattern_children):
        yield dict(subst)
        return
    for extended in _match_class(egraph, pattern_children[position],
                                 class_children[position], subst):
        yield from _match_children(egraph, pattern_children, class_children,
                                   position + 1, extended)


def _instantiate(egraph: EGraph, node: PatternNode, subst: Mapping[str, int]) -> int:
    if node.is_variable:
        try:
            return egraph.find(subst[node.variable])
        except KeyError as exc:
            raise OptimizationError(f"unbound pattern variable {node.variable}") from exc
    kids = tuple(_instantiate(egraph, child, subst) for child in node.children)
    return egraph.add_enode(ENode(node.label, kids))
