"""High-level convenience API: run an SDQLite tensor program end to end.

This is the "one call" interface used by the examples and the quickstart in
the README::

    import numpy as np
    from repro import storel
    from repro.storage import Catalog, CSRFormat, DenseFormat

    catalog = (Catalog()
               .add(CSRFormat.from_dense("A", A))
               .add(DenseFormat.from_dense("X", x))
               .add_scalar("beta", 2.0))
    result = storel.run(
        "sum(<(i,j), a> in A, <k, x> in X) if (j == k) then { i -> beta * a * x }",
        catalog)

Under the hood this parses the program, derives statistics from the catalog,
runs the cost-based optimizer, lowers the chosen plan on the selected
execution backend (``backend="compile"`` by default; ``"interpret"`` and
``"vectorize"`` are the alternatives — see ``docs/backends.md``), executes it
and returns the result (a scalar or a nested dict, or a dense NumPy array
when ``dense_shape`` is given).  Lowered plans are cached process-wide, so
repeated calls with the same plan shape skip re-compilation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from .core.optimizer import OptimizationResult, Optimizer
from .core.statistics import Statistics
from .execution.engine import ExecutionEngine, result_to_dense
from .sdqlite.ast import Expr
from .sdqlite.parser import parse_expr
from .storage.catalog import Catalog


@dataclass
class RunOutcome:
    """Result of :func:`run_detailed`: the value plus the optimizer's output."""

    result: Any
    optimization: OptimizationResult
    plan_source: str


def _as_program(program: "str | Expr") -> Expr:
    if isinstance(program, str):
        return parse_expr(program)
    return program


def run_detailed(program: "str | Expr", catalog: Catalog, *, method: str = "greedy",
                 backend: str = "compile", dense_shape: tuple[int, ...] | None = None,
                 optimizer_options: Mapping[str, Any] | None = None) -> RunOutcome:
    """Optimize and execute ``program`` over ``catalog``; return value and plan details.

    Parameters
    ----------
    program:
        SDQLite source text or a parsed expression over logical tensor names.
    catalog:
        The registered tensors (storage formats + statistics) and scalars.
    method:
        Optimization method: ``"greedy"`` (cheapest strategy-generated
        candidate, fast) or ``"egraph"`` (full two-stage equality
        saturation).
    backend:
        Execution backend: ``"compile"`` (generated Python loops, default),
        ``"interpret"`` (reference interpreter) or ``"vectorize"``
        (whole-array NumPy with automatic loop fallback).
    dense_shape:
        When given, the result is densified into a NumPy array (or scalar)
        of this shape.
    optimizer_options:
        Extra keyword arguments forwarded to
        :class:`~repro.core.optimizer.Optimizer` (e.g. ``iter_limit``).
    """
    expr = _as_program(program)
    stats = Statistics.from_catalog(catalog)
    optimizer = Optimizer(stats, **dict(optimizer_options or {}))
    optimization = optimizer.optimize(expr, catalog.mappings(), method=method)
    engine = ExecutionEngine.for_catalog(catalog, backend=backend)
    prepared = engine.prepare(optimization.plan)
    result = prepared.run()
    if dense_shape is not None:
        result = result_to_dense(result, dense_shape)
    return RunOutcome(result=result, optimization=optimization, plan_source=prepared.source)


def run(program: "str | Expr", catalog: Catalog, *, method: str = "greedy",
        backend: str = "compile", dense_shape: tuple[int, ...] | None = None) -> Any:
    """Optimize and execute ``program`` over ``catalog``; return just the value.

    ``backend`` selects the execution backend — ``"compile"`` (default),
    ``"interpret"`` or ``"vectorize"``; see :func:`run_detailed` for all
    parameters.
    """
    return run_detailed(program, catalog, method=method, backend=backend,
                        dense_shape=dense_shape).result


def explain(program: "str | Expr", catalog: Catalog, *, method: str = "greedy") -> str:
    """Return a human-readable description of the plan STOREL chooses."""
    from .sdqlite.pretty import pretty

    expr = _as_program(program)
    stats = Statistics.from_catalog(catalog)
    optimizer = Optimizer(stats)
    optimization = optimizer.optimize(expr, catalog.mappings(), method=method)
    lines = [
        "== chosen plan ==",
        pretty(optimization.plan, indent=True),
        "",
        f"estimated cost: {optimization.cost:.1f}",
    ]
    if optimization.candidate_costs:
        lines.append("candidate costs:")
        for name, cost in sorted(optimization.candidate_costs.items(), key=lambda kv: kv[1]):
            lines.append(f"  {name:<26}: {cost:.1f}")
    if optimization.stage1 is not None:
        lines.append(f"stage 1 (storage-independent): {optimization.stage1.as_row()}")
    if optimization.stage2 is not None:
        lines.append(f"stage 2 (storage-aware):       {optimization.stage2.as_row()}")
    return "\n".join(lines)
