"""Datasets: synthetic generators plus scaled stand-ins for Table 2."""

from .frostt import TENSORS, load_tensor, tensor_names
from .suitesparse import MATRICES, load_matrix, matrix_names
from .synthetic import (
    density_sweep,
    random_dense_vector,
    random_sparse_matrix,
    random_sparse_matrix_coo,
    random_sparse_tensor3,
    random_sparse_vector,
)

__all__ = [
    "TENSORS", "load_tensor", "tensor_names",
    "MATRICES", "load_matrix", "matrix_names",
    "density_sweep", "random_dense_vector", "random_sparse_matrix",
    "random_sparse_matrix_coo", "random_sparse_tensor3", "random_sparse_vector",
]
