"""Tests for TP ∘ TSM composition and for the e-graph rule base."""

import numpy as np
import pytest

from repro.core import compose, compose_with_lets
from repro.core.rules import (
    all_rules,
    associativity_commutativity_rules,
    dictionary_rules,
    distributivity_rules,
    fusion_rules,
    logical_rules,
    physical_annotation_rules,
    physical_rules,
    rule_names,
    simplification_rules,
)
from repro.data.synthetic import random_dense_vector, random_sparse_matrix
from repro.egraph import EGraph, Runner, extract_smallest
from repro.kernels import BATAX_NESTED
from repro.sdqlite import evaluate, parse_expr, to_debruijn, values_equal
from repro.sdqlite.ast import Sym, symbols
from repro.storage import Catalog, CSRFormat, DenseFormat


def db(source):
    return to_debruijn(parse_expr(source))


# ---------------------------------------------------------------------------
# composition
# ---------------------------------------------------------------------------


def make_catalog():
    a = random_sparse_matrix(6, 6, 0.4, seed=11)
    x = random_dense_vector(6, seed=12)
    return (Catalog()
            .add(CSRFormat.from_dense("A", a))
            .add(DenseFormat.from_dense("X", x))
            .add_scalar("beta", 2.0))


def test_compose_substitutes_mappings():
    catalog = make_catalog()
    program = BATAX_NESTED.program
    naive = compose(program, catalog.mappings())
    names = symbols(naive)
    # Logical tensor names are gone, physical symbols are present.
    assert "A" not in names and "X" not in names
    assert "A_pos2" in names and "X_val" in names and "beta" in names


def test_compose_only_replaces_known_tensors():
    program = parse_expr("sum(<i, v> in A) { i -> v * B(i) }")
    naive = compose(program, {"A": parse_expr("sum(<i, v> in A_raw) { i -> v }")})
    assert "B" in symbols(naive) and "A_raw" in symbols(naive)


def test_compose_with_lets_is_equivalent_to_substitution():
    catalog = make_catalog()
    program = BATAX_NESTED.program
    substituted = compose(program, catalog.mappings())
    let_form = compose_with_lets(program, catalog.mappings())
    env = catalog.globals()
    assert values_equal(evaluate(substituted, env), evaluate(let_form, env))
    # The let chain only binds the tensors the program actually uses.
    assert str(let_form).count("let") >= 2


def test_composed_plan_evaluates_to_reference():
    catalog = make_catalog()
    naive = compose(BATAX_NESTED.program, catalog.mappings())
    a = catalog["A"].to_dense()
    x = catalog["X"].to_dense()
    expected = 2.0 * (a.T @ (a @ x))
    result = evaluate(naive, catalog.globals())
    got = np.array([result.get(j, 0.0) for j in range(6)])
    np.testing.assert_allclose(got, expected)


# ---------------------------------------------------------------------------
# rule base
# ---------------------------------------------------------------------------


def test_rule_base_size_matches_paper_scale():
    names = rule_names()
    assert len(names) == len(set(names)), "duplicate rule names"
    # The paper uses 44 rules; this rule base is the same order of magnitude.
    assert 40 <= len(names) <= 50
    assert len(logical_rules()) + len(physical_rules()) == len(all_rules())


def test_rule_groups_are_nonempty():
    assert len(associativity_commutativity_rules()) >= 8
    assert len(simplification_rules()) >= 10
    assert len(distributivity_rules()) >= 6
    assert len(fusion_rules()) >= 5
    assert len(dictionary_rules()) >= 7
    assert len(physical_annotation_rules()) == 2


def run_rules(expr, rules, iters=8):
    egraph = EGraph()
    root = egraph.add_expr(expr)
    Runner(egraph, rules, iter_limit=iters, node_limit=4000).run()
    return egraph, root


def test_simplification_rules_clean_up_identities():
    egraph, root = run_rules(db("(x * 1 + 0) - 0"), simplification_rules())
    assert extract_smallest(egraph, root) == Sym("x")


def test_distributivity_rule_proves_paper_intro_example():
    """a*(b+c) and a*b + a*c must land in the same e-class (Sec. 1 example)."""
    egraph = EGraph()
    left = egraph.add_expr(db("a * (b + c)"))
    right = egraph.add_expr(db("a * b + a * c"))
    Runner(egraph, logical_rules(), iter_limit=6, node_limit=4000).run()
    assert egraph.equivalent(left, right)


def test_factorization_rule_hoists_invariant_factor():
    egraph, root = run_rules(db("sum(<i, v> in A) beta * v"),
                             distributivity_rules() + simplification_rules())
    hoisted = egraph.contains_expr(db("beta * (sum(<i, v> in A) v)"))
    assert hoisted is not None and egraph.equivalent(root, hoisted)


def test_fusion_rule_converts_iteration_to_lookup():
    """Example 5.1 of the paper: a filtered iteration becomes a lookup."""
    expr = db("sum(<i, a> in A) sum(<j, b> in B) if (i == j) then a * b")
    egraph, root = run_rules(expr, logical_rules() + fusion_rules())
    # After F1 the plan contains a direct lookup B(i).
    found_lookup = egraph.contains_expr(db("sum(<i, a> in A) let v = B(i) in a * v"))
    assert found_lookup is not None and egraph.equivalent(root, found_lookup)


def test_physical_annotation_rules_offer_both_representations():
    egraph, root = run_rules(db("{ 3 -> x }"), physical_annotation_rules(), iters=2)
    dense = egraph.contains_expr(db("{ @dense 3 -> x }"))
    hashed = egraph.contains_expr(db("{ @hash 3 -> x }"))
    assert dense is not None and hashed is not None
    assert egraph.equivalent(root, dense) and egraph.equivalent(root, hashed)


def test_rules_preserve_semantics_through_saturation():
    """Extract any representative after saturation and compare against the input."""
    catalog = make_catalog()
    env = catalog.globals()
    sources = [
        "sum(<i, v> in A_val) v * beta",
        "sum(<i, v> in A_val) { i -> beta * v + 0 }",
        "sum(<i, v> in A_val) if (i == 2) then v * 1",
        "sum(<i, v> in X_val) { i -> v } + sum(<i, v> in X_val) { i -> v }",
    ]
    for source in sources:
        expr = db(source)
        reference = evaluate(expr, env)
        egraph, root = run_rules(expr, logical_rules() + fusion_rules())
        extracted = extract_smallest(egraph, root)
        assert values_equal(evaluate(extracted, env), reference), source
