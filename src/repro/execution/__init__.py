"""Physical plan execution: interpretation and Python code generation."""

from .codegen import CompiledPlan, compile_plan
from .engine import (
    ExecutionEngine,
    PreparedPlan,
    result_to_dense,
    result_to_matrix,
    result_to_scalar,
    result_to_tensor3,
    result_to_vector,
)

__all__ = [
    "CompiledPlan", "compile_plan",
    "ExecutionEngine", "PreparedPlan",
    "result_to_dense", "result_to_matrix", "result_to_scalar",
    "result_to_tensor3", "result_to_vector",
]
