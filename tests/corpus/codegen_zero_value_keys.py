"""Shrunk fuzz repro (seed 1000000086): the compile backend summed the keys
of zero-valued entries (6 instead of 1) — materialized dictionaries in
generated code must uphold the SemiringDict no-zeros invariant, because
programs can observe keys, not just values."""
PROGRAM = "sum(<k1, v2> in T0) k1"
TENSORS = {"T0": [0.0, 1.0, 0.0, 0.0]}
FORMATS = {"T0": "dense"}
SCALARS = {}
CONFIGS = [("unoptimized", "compile"), ("greedy", "compile"), ("egraph", "compile")]
