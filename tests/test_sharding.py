"""Sharded storage formats and out-of-core/parallel execution.

Covers the pieces of ``docs/sharding.md``:

* round-trip properties of the sharded formats (``from_dense``/``to_dense``,
  ``to_buffers``/``from_buffers``, duplicate summing, empty tensors),
  mirroring ``tests/test_buffers.py``;
* the value-only rebuild contract: ``Catalog.update`` on a sharded tensor
  preserves shard count, physical symbols and mapping text, so prepared
  plans survive;
* the shard-aware optimizer rewrites (``split_sharded_sum`` /
  ``lookup_over_add``) and their guards;
* kernel x sharded-format parity on every backend against the interpreter;
* the parallel shard executor: plan splitting, the buffer wire format, the
  worker pool, and the serial fallback — threaded through ``Session`` and
  ``Server``.
"""

import os

import numpy as np
import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro import storel  # noqa: E402
from repro.execution.engine import BACKENDS  # noqa: E402
from repro.execution.sharded import (  # noqa: E402
    ShardExecutor,
    catalog_payload,
    environment_from_payload,
    merge_partials,
    split_plan,
)
from repro.kernels.programs import get_kernel  # noqa: E402
from repro.serving import Server  # noqa: E402
from repro.session import Session  # noqa: E402
from repro.storage import (  # noqa: E402
    ALL_FORMATS,
    Catalog,
    COOFormat,
    CSRFormat,
    DenseFormat,
    MemmapDenseFormat,
    ShardedCOOFormat,
    ShardedCSRFormat,
)
from repro.storage.convert import parse_format_spec, reformat  # noqa: E402
from repro.storage.sharded import (  # noqa: E402
    SHARD_SYMBOL_RE,
    default_shard_count,
    shard_bounds,
)
from repro.sdqlite.ast import Add, Sum  # noqa: E402
from repro.sdqlite.errors import StorageError  # noqa: E402

#: kind -> ranks, mirroring each format's ``candidates_for``.
SHARDED_RANKS = {
    "sharded_coo": (1, 2, 3),
    "sharded_csr": (2,),
}


def _random_dense(seed, shape, density=0.4):
    rng = np.random.default_rng(seed)
    mask = rng.random(shape) < density
    return np.round(rng.standard_normal(shape), 3) * mask


def _roundtrip(fmt):
    rebuilt = type(fmt).from_buffers(fmt.name, fmt.to_buffers(), fmt.shape)
    np.testing.assert_allclose(rebuilt.to_dense(), fmt.to_dense())
    assert rebuilt.shape == fmt.shape
    if hasattr(fmt, "n_shards"):
        assert rebuilt.n_shards == fmt.n_shards


# ---------------------------------------------------------------------------
# round-trip properties (mirrors tests/test_buffers.py)
# ---------------------------------------------------------------------------


@st.composite
def sharded_case(draw):
    kind = draw(st.sampled_from(sorted(SHARDED_RANKS)))
    rank = draw(st.sampled_from(SHARDED_RANKS[kind]))
    shape = tuple(draw(st.integers(min_value=1, max_value=7))
                  for _ in range(rank))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    density = draw(st.sampled_from((0.0, 0.2, 0.6, 1.0)))
    shards = draw(st.integers(min_value=1, max_value=4))
    return kind, _random_dense(seed, shape, density), shards


@settings(max_examples=60, deadline=None)
@given(sharded_case())
def test_sharded_dense_and_buffers_roundtrip(case):
    kind, dense, shards = case
    fmt = ALL_FORMATS[kind].from_dense("T", dense, shards=shards)
    np.testing.assert_allclose(fmt.to_dense(), dense)
    _roundtrip(fmt)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=2**32 - 1),
       st.integers(min_value=1, max_value=4))
def test_sharded_duplicate_coordinates_are_summed(seed, shards):
    rng = np.random.default_rng(seed)
    coords = rng.integers(0, 5, size=(12, 2))
    values = np.round(rng.standard_normal(12), 3)
    dense = np.zeros((5, 5))
    np.add.at(dense, tuple(coords.T), values)
    for kind in SHARDED_RANKS:
        fmt = ALL_FORMATS[kind].from_coo("D", coords, values, (5, 5),
                                         shards=shards)
        np.testing.assert_allclose(fmt.to_dense(), dense, atol=1e-12)


@pytest.mark.parametrize("kind", sorted(SHARDED_RANKS))
def test_sharded_empty_matrix(kind):
    fmt = ALL_FORMATS[kind].from_coo(
        "E", np.empty((0, 2), dtype=np.int64), np.empty(0), (4, 4), shards=3)
    assert fmt.nnz == 0
    np.testing.assert_array_equal(fmt.to_dense(), np.zeros((4, 4)))
    _roundtrip(fmt)


def test_single_shard_is_legal_and_roundtrips():
    dense = _random_dense(7, (6, 5))
    for kind in SHARDED_RANKS:
        fmt = ALL_FORMATS[kind].from_dense("S", dense, shards=1)
        assert fmt.n_shards == 1
        np.testing.assert_allclose(fmt.to_dense(), dense)
        _roundtrip(fmt)


def test_memmap_dense_roundtrips_and_stays_mapped(tmp_path):
    dense = _random_dense(3, (6, 4))
    fmt = MemmapDenseFormat.from_dense("M", dense)
    assert isinstance(fmt.array, np.memmap)
    np.testing.assert_allclose(fmt.to_dense(), dense)
    coords, values = fmt.to_coo()
    np.testing.assert_array_equal(coords, np.argwhere(dense))
    rebuilt = MemmapDenseFormat.from_buffers("M", fmt.to_buffers(), fmt.shape)
    # The wire path adopts the memmap by reference: no copy, still file-backed.
    assert isinstance(rebuilt.array, np.memmap)
    np.testing.assert_allclose(rebuilt.to_dense(), dense)


def test_shard_bounds_are_deterministic_equal_row_splits():
    np.testing.assert_array_equal(shard_bounds(10, 4), [0, 2, 5, 8, 10])
    np.testing.assert_array_equal(shard_bounds(3, 8), [0, 1, 2, 3])  # clamped
    np.testing.assert_array_equal(shard_bounds(0, 3), [0, 0])  # one empty shard
    assert default_shard_count(100, 50) == 2
    assert default_shard_count(1 << 20, 1 << 30) == 16


def test_shard_symbol_regex_matches_physical_symbols():
    fmt = ShardedCOOFormat.from_dense("A", _random_dense(1, (5, 5)), shards=2)
    for symbol in fmt.physical():
        match = SHARD_SYMBOL_RE.match(symbol)
        assert match and match.group(1) == "A"


# ---------------------------------------------------------------------------
# format specs and the value-only rebuild contract
# ---------------------------------------------------------------------------


def test_parse_format_spec():
    assert parse_format_spec("csr") == ("csr", None)
    assert parse_format_spec("sharded_coo@4") == ("sharded_coo", 4)
    with pytest.raises(StorageError):
        parse_format_spec("sharded_coo@zero")
    with pytest.raises(StorageError):
        parse_format_spec("sharded_coo@0")


def test_reformat_spec_roundtrip_and_noop():
    dense = _random_dense(5, (8, 6))
    fmt = reformat(CSRFormat.from_dense("A", dense), "sharded_csr@3")
    assert fmt.spec_name == "sharded_csr@3" and fmt.n_shards == 3
    np.testing.assert_allclose(fmt.to_dense(), dense)
    assert reformat(fmt, "sharded_csr@3") is fmt  # spec-aware no-op
    with pytest.raises(StorageError):
        reformat(fmt, "csr@3")  # @k is only legal on sharded formats


@pytest.mark.parametrize("kind", sorted(SHARDED_RANKS))
def test_catalog_update_preserves_shard_layout(kind):
    dense = _random_dense(11, (9, 5))
    catalog = Catalog().add(ALL_FORMATS[kind].from_dense("A", dense, shards=3))
    before = catalog.tensors["A"]
    symbols = set(before.physical())
    mapping = before.mapping_source()
    epochs = catalog.epochs()
    catalog.update("A", np.array([[4, 2]]), np.array([2.5]))
    after = catalog.tensors["A"]
    assert after.n_shards == 3
    assert set(after.physical()) == symbols
    assert after.mapping_source() == mapping
    # value-only: version bumped, schema untouched
    assert catalog.epochs() == (epochs[0] + 1, epochs[1])
    dense[4, 2] += 2.5
    np.testing.assert_allclose(after.to_dense(), dense)


# ---------------------------------------------------------------------------
# optimizer rewrites
# ---------------------------------------------------------------------------


def _batax_catalog(A, X, fmt_cls=ShardedCOOFormat, shards=3, **kwargs):
    return (Catalog()
            .add(fmt_cls.from_dense("A", A, shards=shards, **kwargs))
            .add(DenseFormat.from_dense("X", X))
            .add_scalar("beta", 2.0))


def test_sharded_plan_splits_into_per_shard_sums():
    A = _random_dense(2, (12, 7))
    X = np.arange(7, dtype=float)
    outcome = storel.run_detailed(get_kernel("batax").source,
                                  _batax_catalog(A, X, shards=3))
    parts = split_plan(outcome.optimization.plan)
    assert len(parts) == 3
    assert all(not isinstance(part, Add) for part in parts)


def test_unsharded_plans_have_no_root_add_chain():
    A = _random_dense(2, (12, 7))
    X = np.arange(7, dtype=float)
    catalog = (Catalog().add(CSRFormat.from_dense("A", A))
               .add(DenseFormat.from_dense("X", X)).add_scalar("beta", 2.0))
    outcome = storel.run_detailed(get_kernel("batax").source, catalog)
    assert split_plan(outcome.optimization.plan) == []


def test_sum_over_two_sharded_tensors_does_not_split():
    # sum over A + B (two different sharded tensors) may share keys across
    # addends, so the split guard must refuse it — and the result must still
    # be correct through the unsplit path.
    dense_a = _random_dense(3, (6,))
    dense_b = _random_dense(4, (6,))
    catalog = (Catalog()
               .add(ShardedCOOFormat.from_dense("A", dense_a, shards=2))
               .add(ShardedCOOFormat.from_dense("B", dense_b, shards=2)))
    program = "sum(<k, v> in (A + B)) v"
    result = storel.run(program, catalog)
    assert result == pytest.approx(dense_a.sum() + dense_b.sum())


# ---------------------------------------------------------------------------
# kernel x format parity, every backend vs the interpreter
# ---------------------------------------------------------------------------

#: (kernel, sharded tensor, other tensors, scalars, result shape)
PARITY_CASES = [
    ("batax", ("A", (11, 6)), {"X": (6,)}, {"beta": 2.0}, (6,)),
    ("mttkrp", ("A", (5, 4, 3)), {"B": (4, 2), "C": (3, 2)}, {}, (5, 2)),
]


def _parity_catalog(sharded_kind, shards, case, seed=9):
    _, (name, shape), others, scalars, _ = case
    rng = np.random.default_rng(seed)
    catalog = Catalog()
    dense = _random_dense(seed, shape, density=0.5)
    if sharded_kind is None:
        catalog.add(COOFormat.from_dense(name, dense))
    else:
        catalog.add(ALL_FORMATS[sharded_kind].from_dense(name, dense,
                                                         shards=shards))
    for other, other_shape in others.items():
        catalog.add(DenseFormat.from_dense(other, rng.random(other_shape)))
    for scalar, value in scalars.items():
        catalog.add_scalar(scalar, value)
    return catalog


@pytest.mark.parametrize("case", PARITY_CASES, ids=[c[0] for c in PARITY_CASES])
@pytest.mark.parametrize("backend", BACKENDS)
def test_kernel_parity_sharded_vs_interpreter(case, backend):
    kernel, (_, shape), _, _, out_shape = case
    source = get_kernel(case[0]).source
    reference = storel.run(source, _parity_catalog(None, 1, case),
                           backend="interpret", dense_shape=out_shape)
    for kind, ranks in SHARDED_RANKS.items():
        if len(shape) not in ranks:
            continue
        for shards in (1, 3):
            got = storel.run(source, _parity_catalog(kind, shards, case),
                             backend=backend, dense_shape=out_shape)
            np.testing.assert_allclose(got, reference, atol=1e-9,
                                       err_msg=f"{kernel}/{kind}@{shards}/{backend}")


# ---------------------------------------------------------------------------
# the parallel executor
# ---------------------------------------------------------------------------


def test_split_plan_flattens_nested_chains():
    from repro.sdqlite.ast import Const
    chain = Add(Add(Const(1), Const(2)), Add(Const(3), Const(4)))
    assert split_plan(chain) == [Const(1), Const(2), Const(3), Const(4)]
    assert split_plan(Const(1)) == []


def test_merge_partials_is_semiring_addition():
    assert merge_partials([2.0, 3.0]) == 5.0
    merged = merge_partials([{0: 1.0}, {0: 2.0, 1: 4.0}, {}])
    assert dict(merged.items()) == {0: 3.0, 1: 4.0}
    assert merge_partials([]) == 0


def test_catalog_payload_roundtrips_environment(tmp_path):
    A = _random_dense(6, (10, 4))
    catalog = _batax_catalog(A, np.arange(4, dtype=float), shards=2,
                             memmap_dir=str(tmp_path))
    env = environment_from_payload(catalog_payload(catalog))
    reference = catalog.globals()
    assert set(env) == set(reference)
    assert env["beta"] == 2.0
    for symbol, value in reference.items():
        if isinstance(value, np.ndarray):
            np.testing.assert_array_equal(np.asarray(env[symbol]),
                                          np.asarray(value))


def test_shard_executor_matches_serial_and_retires_on_mutation():
    A = _random_dense(8, (16, 6))
    X = np.arange(6, dtype=float)
    catalog = _batax_catalog(A, X, shards=4)
    session = Session(catalog)
    statement = session.prepare(get_kernel("batax").source, dense_shape=(6,))
    serial = statement.execute()
    executor = ShardExecutor(workers=2)
    try:
        parts = split_plan(statement._prepared.plan)
        assert len(parts) == 4
        merged = executor.run_parts(parts, catalog, "compile")
        from repro.execution.engine import result_to_dense
        np.testing.assert_allclose(result_to_dense(merged, (6,)), serial)
        first_key = executor._key
        catalog.update("A", np.array([[0, 0]]), np.array([1.0]))
        merged = executor.run_parts(parts, catalog, "compile")
        assert executor._key != first_key  # pool retired on the version bump
    finally:
        executor.close()
    session.close()


@pytest.mark.parametrize("backend", ["compile", "vectorize"])
def test_session_shard_workers_parity(backend):
    A = _random_dense(10, (14, 5))
    X = np.arange(5, dtype=float)
    serial = Session(_batax_catalog(A, X, shards=3), backend=backend)
    parallel = Session(_batax_catalog(A, X, shards=3), backend=backend,
                       shard_workers=2)
    try:
        program = get_kernel("batax").source
        expected = serial.prepare(program, dense_shape=(5,)).execute()
        statement = parallel.prepare(program, dense_shape=(5,))
        np.testing.assert_allclose(statement.execute(), expected)
        # scalar re-binding ships per-call, not in the pooled environment
        np.testing.assert_allclose(statement.execute(beta=4.0), 2 * expected)
        np.testing.assert_allclose(statement.execute(), expected)
    finally:
        serial.close()
        parallel.close()


def test_server_shard_workers_parity():
    A = _random_dense(12, (14, 5))
    X = np.arange(5, dtype=float)
    program = get_kernel("batax").source
    expected = storel.run(program, _batax_catalog(A, X, shards=3),
                          dense_shape=(5,))
    with Server(_batax_catalog(A, X, shards=3), shard_workers=2) as server:
        statement = server.session().prepare(program, dense_shape=(5,))
        np.testing.assert_allclose(statement.execute(), expected)
        # a catalog mutation retires the pool and the next request still serves
        server.update("A", np.array([[0, 0]]), np.array([3.0]))
        bumped = A.copy()
        bumped[0, 0] += 3.0
        np.testing.assert_allclose(
            statement.execute(),
            storel.run(program, _batax_catalog(bumped, X, shards=3),
                       dense_shape=(5,)))


def test_shard_workers_zero_never_spawns():
    executor = ShardExecutor(workers=0)
    assert not executor.available()
    executor = ShardExecutor(workers=1)
    assert not executor.available()


def test_session_falls_back_when_pool_fails(monkeypatch):
    A = _random_dense(10, (14, 5))
    X = np.arange(5, dtype=float)
    session = Session(_batax_catalog(A, X, shards=3), shard_workers=2)
    try:
        statement = session.prepare(get_kernel("batax").source, dense_shape=(5,))
        expected = storel.run(get_kernel("batax").source,
                              _batax_catalog(A, X, shards=3), dense_shape=(5,))

        def boom(*args, **kwargs):
            raise RuntimeError("pool down")

        monkeypatch.setattr(session._shard_executor, "run_parts", boom)
        np.testing.assert_allclose(statement.execute(), expected)
    finally:
        session.close()


# ---------------------------------------------------------------------------
# out-of-core: memmap-backed shards stream without densifying
# ---------------------------------------------------------------------------


def test_memmap_backed_shards_stream_a_huge_sparse_tensor(tmp_path):
    # Dense volume is 2^40 cells (8 TiB) — any densifying path would die.
    n = 1 << 20
    rng = np.random.default_rng(0)
    nnz = 5000
    coords = np.column_stack([rng.integers(0, n, nnz), rng.integers(0, n, nnz)])
    values = rng.random(nnz)
    fmt = ShardedCOOFormat.from_coo("A", coords, values, (n, n), shards=4,
                                    memmap_dir=str(tmp_path))
    assert any(isinstance(block["val"], np.memmap)
               for block in fmt.shard_arrays)
    catalog = Catalog().add(fmt)
    result = storel.run("sum(<i, row> in A) sum(<j, v> in row) v", catalog)
    deduped = COOFormat.from_coo("D", coords, values, (n, n))
    assert result == pytest.approx(deduped.values.sum())
    # spill files live in the requested directory
    assert any(name.endswith(".mm") for name in os.listdir(tmp_path))
