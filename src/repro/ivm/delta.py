"""Delta-rule derivation for SDQLite programs (the ``ΔQ`` of IVM).

Given a program ``Q`` and the name of one updated tensor ``T``, derive a
*delta program* ``ΔQ`` over the original tensors plus a fresh symbol
``T__delta`` such that, writing ``⊕`` for semiring addition of results,

    ``eval(Q, db + Δ)  ==  eval(Q, db)  ⊕  eval(ΔQ, db, Δ)``

for every sparse point-update ``Δ`` to ``T``.  The rules follow directly
from distributivity of the semiring operations:

========================= ====================================================
construct                 delta rule
========================= ====================================================
``a + b``                 ``Δa + Δb``
``a - b`` / ``-a``        ``Δa - Δb`` / ``-Δa``
``a * b``                 ``Δa*b + a*Δb + Δa*Δb`` (the discrete product rule)
``a / b``                 ``Δa / b`` — only when ``Δb = 0``
``{k -> v}``              ``{k -> Δv}`` — only when ``Δk = 0``
``d(k)``                  ``Δd(k)`` — lookup is linear, missing keys are 0
``if c then e``           ``if c then Δe`` — only when ``Δc = 0``
``let x = v in b``        pushdown; a changed binding introduces ``Δx``
``sum(<k,v> in S) b``     ``sum(S) Δb  ⊕  sum(ΔS) (b + Δb)`` — the second
                          term requires ``b + Δb`` *homogeneously linear*
                          in the value ``v`` (so evaluating it at ``Δv``
                          yields exactly the contribution change)
========================= ====================================================

Constructs whose output is a *discontinuous* function of the updated values
(comparisons, boolean operators, range bounds, divisors, dictionary keys)
have no sparse delta; :class:`DeltaNotSupported` is raised and the caller
falls back to full re-execution.  The conservative linearity test
:func:`is_linear_in` plays the same role for sums over an updated source:
``False`` never produces a wrong delta, only a full refresh.

Derivation happens on the De Bruijn form.  Internally ``None`` represents a
*proven-zero* delta, pruned eagerly so the common case — a program that
merely reads the updated tensor linearly — yields a delta program whose
cost is proportional to the size of the update, not the database.
"""

from __future__ import annotations

from typing import Optional

from ..sdqlite.ast import (
    Add,
    And,
    Cmp,
    Const,
    DictExpr,
    Div,
    Expr,
    Get,
    IfThen,
    Idx,
    Let,
    Merge,
    Mul,
    Neg,
    Not,
    Or,
    RangeExpr,
    SliceGet,
    Sub,
    Sum,
    Sym,
    Var,
    ZERO,
)
from ..sdqlite.debruijn import free_indices, shift, to_debruijn_safe


class DeltaNotSupported(Exception):
    """The program has no sparse delta w.r.t. the updated tensor.

    Raised when the updated tensor flows into a construct whose output is
    not an additively decomposable function of it (a comparison, a divisor,
    a dictionary key, a non-linear sum body, ...).  Callers treat this as a
    *structural* fallback: the view is maintained by full re-execution.
    """


def delta_symbol(tensor: str) -> str:
    """The reserved global symbol naming the sparse delta of ``tensor``."""
    return f"{tensor}__delta"


# ---------------------------------------------------------------------------
# Homogeneous linearity
# ---------------------------------------------------------------------------


def _uses(expr: Expr, index: int) -> bool:
    return index in free_indices(expr)


def is_linear_in(expr: Expr, index: int) -> bool:
    """True when ``expr`` is *homogeneously* linear in the free index ``%index``.

    Homogeneous means ``expr[x := a + b] == expr[x := a] ⊕ expr[x := b]``
    and in particular ``expr[x := 0] == 0`` — constants do **not** count as
    linear.  This is exactly the property that makes the sum delta rule
    exact: for a key present in both the source and its delta, evaluating
    the body at the delta value yields the change of that key's
    contribution.  The test is conservative (syntactic); ``False`` merely
    triggers a full refresh.
    """
    if isinstance(expr, Idx):
        return expr.index == index
    if isinstance(expr, (Add, Sub)):
        return is_linear_in(expr.left, index) and is_linear_in(expr.right, index)
    if isinstance(expr, Neg):
        return is_linear_in(expr.operand, index)
    if isinstance(expr, Mul):
        left_uses = _uses(expr.left, index)
        right_uses = _uses(expr.right, index)
        if left_uses and not right_uses:
            return is_linear_in(expr.left, index)
        if right_uses and not left_uses:
            return is_linear_in(expr.right, index)
        return False  # bilinear (x * x) or unused on both sides
    if isinstance(expr, Div):
        return (not _uses(expr.right, index)) and is_linear_in(expr.left, index)
    if isinstance(expr, DictExpr):
        return (not _uses(expr.key, index)) and is_linear_in(expr.value, index)
    if isinstance(expr, Get):
        return (not _uses(expr.key, index)) and is_linear_in(expr.target, index)
    if isinstance(expr, SliceGet):
        return (not _uses(expr.lo, index) and not _uses(expr.hi, index)
                and is_linear_in(expr.target, index))
    if isinstance(expr, IfThen):
        return (not _uses(expr.cond, index)) and is_linear_in(expr.then, index)
    if isinstance(expr, Sum):
        if not _uses(expr.source, index):
            return is_linear_in(expr.body, index + 2)
        # Linear source, body linear in the iterated value and independent
        # of the outer index: sum(S(x)) b distributes over x.
        return (is_linear_in(expr.source, index)
                and not _uses(expr.body, index + 2)
                and is_linear_in(expr.body, 0))
    if isinstance(expr, Let):
        if not _uses(expr.value, index):
            return is_linear_in(expr.body, index + 1)
        return (is_linear_in(expr.value, index)
                and not _uses(expr.body, index + 1)
                and is_linear_in(expr.body, 0))
    if isinstance(expr, Merge):
        if _uses(expr.left, index) or _uses(expr.right, index):
            return False
        return is_linear_in(expr.body, index + 3)
    # Const, Sym, Cmp, And, Or, Not, RangeExpr, Var: constant in %index
    # (or opaque) — not homogeneously linear.
    return False


# ---------------------------------------------------------------------------
# Zero-pruning smart constructors (None = proven-zero delta)
# ---------------------------------------------------------------------------


def _add(left: Optional[Expr], right: Optional[Expr]) -> Optional[Expr]:
    if left is None:
        return right
    if right is None:
        return left
    return Add(left, right)


def _sub(left: Optional[Expr], right: Optional[Expr]) -> Optional[Expr]:
    if right is None:
        return left
    if left is None:
        # Not Neg: the backends negate with Python's unary minus, which is
        # scalar-only, while Sub subtracts dictionaries element-wise — and a
        # delta can be dictionary-valued even where the original was not.
        return Sub(ZERO, right)
    return Sub(left, right)


# ---------------------------------------------------------------------------
# The delta transform
# ---------------------------------------------------------------------------

_Env = tuple  # tuple[Optional[Expr], ...]: env[i] = delta of Idx(i), None = zero


def _push(env: _Env, arity: int) -> _Env:
    """Enter a binder of ``arity`` whose bound variables have zero delta."""
    if arity == 0:
        return env
    shifted = tuple(None if d is None else shift(d, arity, 0) for d in env)
    return (None,) * arity + shifted


def _delta(expr: Expr, env: _Env, tensor: str, dname: str) -> Optional[Expr]:
    if isinstance(expr, Const):
        return None
    if isinstance(expr, Sym):
        return Sym(dname) if expr.name == tensor else None
    if isinstance(expr, Idx):
        return env[expr.index] if expr.index < len(env) else None
    if isinstance(expr, Var):
        raise DeltaNotSupported("delta derivation requires the nameless form")
    if isinstance(expr, Add):
        return _add(_delta(expr.left, env, tensor, dname),
                    _delta(expr.right, env, tensor, dname))
    if isinstance(expr, Sub):
        return _sub(_delta(expr.left, env, tensor, dname),
                    _delta(expr.right, env, tensor, dname))
    if isinstance(expr, Neg):
        inner = _delta(expr.operand, env, tensor, dname)
        return None if inner is None else Neg(inner)
    if isinstance(expr, Mul):
        dl = _delta(expr.left, env, tensor, dname)
        dr = _delta(expr.right, env, tensor, dname)
        # (a+Δa)(b+Δb) - ab = Δa·b + a·Δb + Δa·Δb
        out: Optional[Expr] = None
        if dl is not None:
            out = _add(out, Mul(dl, expr.right))
        if dr is not None:
            out = _add(out, Mul(expr.left, dr))
        if dl is not None and dr is not None:
            out = _add(out, Mul(dl, dr))
        return out
    if isinstance(expr, Div):
        dr = _delta(expr.right, env, tensor, dname)
        if dr is not None:
            raise DeltaNotSupported("updated tensor flows into a divisor")
        dl = _delta(expr.left, env, tensor, dname)
        return None if dl is None else Div(dl, expr.right)
    if isinstance(expr, (Cmp, And, Or)):
        if (_delta(expr.left, env, tensor, dname) is None
                and _delta(expr.right, env, tensor, dname) is None):
            return None
        raise DeltaNotSupported("updated tensor flows into a boolean operator")
    if isinstance(expr, Not):
        if _delta(expr.operand, env, tensor, dname) is None:
            return None
        raise DeltaNotSupported("updated tensor flows into a boolean operator")
    if isinstance(expr, DictExpr):
        if _delta(expr.key, env, tensor, dname) is not None:
            raise DeltaNotSupported("updated tensor flows into a dictionary key")
        dv = _delta(expr.value, env, tensor, dname)
        if dv is None:
            return None
        return DictExpr(expr.key, dv, annot=expr.annot, unique=expr.unique)
    if isinstance(expr, Get):
        if _delta(expr.key, env, tensor, dname) is not None:
            raise DeltaNotSupported("updated tensor flows into a lookup key")
        dt = _delta(expr.target, env, tensor, dname)
        # Lookup is linear: (d ⊕ Δd)(k) = d(k) + Δd(k), missing keys read 0.
        return None if dt is None else Get(dt, expr.key)
    if isinstance(expr, RangeExpr):
        if (_delta(expr.lo, env, tensor, dname) is None
                and _delta(expr.hi, env, tensor, dname) is None):
            return None
        raise DeltaNotSupported("updated tensor flows into a range bound")
    if isinstance(expr, SliceGet):
        if (_delta(expr.lo, env, tensor, dname) is not None
                or _delta(expr.hi, env, tensor, dname) is not None):
            raise DeltaNotSupported("updated tensor flows into a slice bound")
        dt = _delta(expr.target, env, tensor, dname)
        return None if dt is None else SliceGet(dt, expr.lo, expr.hi)
    if isinstance(expr, IfThen):
        if _delta(expr.cond, env, tensor, dname) is not None:
            raise DeltaNotSupported("updated tensor flows into a condition")
        dt = _delta(expr.then, env, tensor, dname)
        return None if dt is None else IfThen(expr.cond, dt)
    if isinstance(expr, Let):
        dv = _delta(expr.value, env, tensor, dname)
        if dv is None:
            db = _delta(expr.body, _push(env, 1), tensor, dname)
            return None if db is None else Let(expr.value, db, name=expr.name)
        # The bound value itself changes: re-bind its delta alongside it.
        # New scope: %0 = Δx (inner let), %1 = x (outer let), outer indices
        # shift by 2.  The original body is lifted so x stays addressable.
        body2 = shift(expr.body, 1, 0)  # %0 (x) -> %1, outers follow
        env2 = (None, Idx(0)) + tuple(
            None if d is None else shift(d, 2, 0) for d in env)
        db2 = _delta(body2, env2, tensor, dname)
        if db2 is None:
            return None
        return Let(expr.value, Let(shift(dv, 1, 0), db2, name=None),
                   name=expr.name)
    if isinstance(expr, Sum):
        ds = _delta(expr.source, env, tensor, dname)
        db = _delta(expr.body, _push(env, 2), tensor, dname)
        if ds is None:
            if db is None:
                return None
            return Sum(expr.source, db, key_name=expr.key_name,
                       val_name=expr.val_name)
        # Changed source.  Decompose over keys:
        #   k in S only:        covered by sum(S) Δb
        #   k in S and ΔS:      sum(S) Δb contributes Δb(k, v_old); the
        #                       remaining change of (b+Δb)(k, ·) between
        #                       v_old and v_old+Δv is (b+Δb)(k, Δv) —
        #                       exactly what sum(ΔS) (b+Δb) adds, provided
        #                       b+Δb is homogeneously linear in the value;
        #   k in ΔS only:       new contribution (b+Δb)(k, Δv), ditto.
        new_body = expr.body if db is None else Add(expr.body, db)
        if not is_linear_in(new_body, 0):
            raise DeltaNotSupported(
                "sum body is not linear in the updated source's values")
        first = None if db is None else Sum(expr.source, db,
                                            key_name=expr.key_name,
                                            val_name=expr.val_name)
        second = Sum(ds, new_body, key_name=expr.key_name,
                     val_name=expr.val_name)
        return _add(first, second)
    if isinstance(expr, Merge):
        dl = _delta(expr.left, env, tensor, dname)
        dr = _delta(expr.right, env, tensor, dname)
        if dl is not None or dr is not None:
            raise DeltaNotSupported("updated tensor flows into a merge source")
        db = _delta(expr.body, _push(env, 3), tensor, dname)
        if db is None:
            return None
        return Merge(expr.left, expr.right, db, key1_name=expr.key1_name,
                     key2_name=expr.key2_name, val_name=expr.val_name)
    raise DeltaNotSupported(f"no delta rule for {type(expr).__name__}")


def derive_delta(program: Expr, tensor: str, delta_name: str | None = None) -> Expr:
    """Derive the delta program of ``program`` w.r.t. an update to ``tensor``.

    The result is a De Bruijn-form program over the original global symbols
    plus ``delta_name`` (default :func:`delta_symbol`), satisfying the IVM
    identity above.  A program that provably does not depend on ``tensor``
    yields ``Const(0)``.  Raises :class:`DeltaNotSupported` when no sparse
    delta exists (caller should fall back to full re-execution).
    """
    if delta_name is None:
        delta_name = delta_symbol(tensor)
    expr = to_debruijn_safe(program)
    d = _delta(expr, (), tensor, delta_name)
    return ZERO if d is None else d
