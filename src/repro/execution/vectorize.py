"""Vectorized NumPy execution of physical SDQLite plans.

The third execution backend (``backend="vectorize"``).  Where the ``compile``
backend lowers every plan to nested scalar Python ``for`` loops, this module
evaluates whole loops at once with NumPy array operations:

* a ``sum`` over a range / array / segmented-array slice binds its key and
  value variables to **index vectors** ("lanes", one lane per iteration) and
  evaluates the loop body once over all lanes,
* scalar arithmetic, comparisons and conditionals inside the body become
  element-wise array expressions (``if (c) then e`` → ``np.where``),
* ``e(i)`` with a vector key over a physical array becomes a bounds-checked
  gather,
* a body of shape ``{ key -> value }`` becomes a scatter-add
  (``np.bincount`` on the key vector) producing the result dictionary in one
  step instead of per-iteration dictionary updates.

Not every construct vectorizes: nested ``sum``s inside an already-batched
body, ``merge``, iteration over tries / tuple-keyed hash-maps, and lookups
into non-array collections with vector keys all raise
:class:`Unvectorizable`.  The enclosing ``sum`` then **falls back** to a
plain Python loop over its iteration space — inside which inner ``sum``s get
their own chance to vectorize.  A typical CSR plan therefore runs its outer
row loop in Python and each row-segment reduction as one NumPy expression.
The fallback is per-``sum`` and automatic, so the backend executes every
plan the interpreter and the ``compile`` backend execute, with identical
results (see ``tests/test_vectorize.py`` for the kernel × format parity
matrix).

The lowering is closure-based: :func:`vectorize_plan` translates the De
Bruijn plan once into a tree of Python closures; executing the resulting
:class:`VectorizedPlan` re-runs the closures against an environment without
re-traversing the AST.  Lowered plans are environment-independent and are
cached by :class:`repro.execution.engine.PlanCache`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

import numpy as np

from ..sdqlite.ast import (
    Add,
    And,
    Cmp,
    Const,
    DictExpr,
    Div,
    Expr,
    Get,
    IfThen,
    Idx,
    Let,
    Merge,
    Mul,
    Neg,
    Not,
    Or,
    RangeExpr,
    SliceGet,
    Sub,
    Sum,
    Sym,
    Var,
    binder_arities,
    children,
)
from ..sdqlite.errors import EvaluationError, ExecutionError
from ..sdqlite.values import (
    RangeDict,
    SemiringDict,
    SliceDict,
    is_scalar,
    is_zero,
    iter_items,
    lookup,
    merge_hashable,
    normalize_key,
    truthy,
    v_add,
    v_mul,
    v_sub,
)
from ..storage.physical import PhysicalArray

__all__ = ["vectorize_plan", "VectorizedPlan", "Unvectorizable"]


class Unvectorizable(Exception):
    """Raised inside a batched body when a construct cannot be vectorized.

    Caught by the enclosing ``sum``, which falls back to a Python loop.
    """


class Batch:
    """A scalar value per lane: one NumPy array over the iteration space."""

    __slots__ = ("data",)

    def __init__(self, data: np.ndarray):
        self.data = data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Batch({self.data!r})"


class BatchDict:
    """A singleton dictionary ``{ key -> value }`` per lane.

    ``keys`` holds one integer key per lane; ``value`` is either a
    :class:`Batch`-style array (scalar leaf per lane) or a nested
    :class:`BatchDict`; ``mask`` (optional boolean array) marks lanes whose
    entry exists at all (lanes filtered out by ``if`` conditions).
    Reduced to a real nested dictionary by :func:`_scatter`.
    """

    __slots__ = ("keys", "value", "mask")

    def __init__(self, keys: np.ndarray, value: "np.ndarray | BatchDict",
                 mask: np.ndarray | None = None):
        self.keys = keys
        self.value = value
        self.mask = mask

    def with_mask(self, mask: np.ndarray) -> "BatchDict":
        combined = mask if self.mask is None else (self.mask & mask)
        return BatchDict(self.keys, self.value, combined)

    def scaled(self, factor) -> "BatchDict":
        """Multiply every lane's leaf value by ``factor`` (array or scalar)."""
        if isinstance(self.value, BatchDict):
            return BatchDict(self.keys, self.value.scaled(factor), self.mask)
        return BatchDict(self.keys, self.value * factor, self.mask)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BatchDict(keys={self.keys!r}, value={self.value!r}, mask={self.mask!r})"


class _Runtime:
    """Per-execution state threaded through the closures."""

    __slots__ = ("env", "batched", "lanes", "invariants", "failed_batch",
                 "fallbacks", "profile")

    def __init__(self, env: Mapping[str, Any], profile=None):
        self.env = env
        self.batched = False          # inside a vectorized sum body?
        self.lanes = 0                # lane count of the current batched body
        self.invariants: dict = {}    # slot -> value of closed (loop-invariant) subplans
        self.failed_batch: set = set()  # sum slots whose batched body failed this run
        self.fallbacks: set = set()   # loops that ran scalar Python this run
        self.profile = profile        # optional ExecutionProfile (loop counts)


_Closure = Callable[[list, _Runtime], Any]


# ---------------------------------------------------------------------------
# Batched helpers
# ---------------------------------------------------------------------------


def _is_batched(value) -> bool:
    return isinstance(value, (Batch, BatchDict))


def _lane_data(value):
    """Unwrap a scalar-or-:class:`Batch` operand for element-wise NumPy ops."""
    if isinstance(value, Batch):
        return value.data
    if is_scalar(value):
        return value
    raise Unvectorizable(f"non-scalar operand of type {type(value).__name__} in batched body")


def _key_lanes(value, lanes: int) -> np.ndarray:
    """Normalise a batched dictionary key to an int64 vector.

    BatchDict keys are integers; a non-integral key (which the interpreter
    would keep as a float key) raises :class:`Unvectorizable` so the
    enclosing sum falls back to the loop instead of silently truncating.
    """
    if isinstance(value, Batch):
        data = value.data
        if data.dtype.kind == "f":
            if not np.all(np.mod(data, 1) == 0):
                raise Unvectorizable("non-integer dictionary keys in batched body")
            return data.astype(np.int64)
        if data.dtype.kind in ("i", "u", "b"):
            return data.astype(np.int64)
        raise Unvectorizable(f"cannot use dtype {data.dtype} as dictionary keys")
    if is_scalar(value):
        as_float = float(value)
        if isinstance(value, (bool, np.bool_)) or as_float.is_integer():
            return np.full(lanes, int(as_float), dtype=np.int64)
        raise Unvectorizable("non-integer dictionary key in batched body")
    raise Unvectorizable("dictionary key is not a scalar in batched body")


def _value_lanes(value, lanes: int) -> "np.ndarray | BatchDict":
    """Normalise a batched dictionary value to an array (or nested BatchDict)."""
    if isinstance(value, BatchDict):
        return value
    if isinstance(value, Batch):
        return value.data
    if is_scalar(value):
        return np.full(lanes, value)
    raise Unvectorizable("dictionary value does not vectorize")


def _iteration_arrays(source) -> tuple[np.ndarray, np.ndarray] | None:
    """``(keys, values)`` arrays for a vectorizable iteration space, else ``None``.

    Vectorizable sources: ranges ``lo:hi``, one-dimensional physical arrays,
    segmented-array slices ``e(lo:hi)`` over physical arrays, and flat
    integer-keyed dictionaries with scalar values.  Tries, nested hash-maps
    and tuple-keyed dictionaries return ``None`` (the sum falls back to a
    Python loop whose inner sums may still vectorize).
    """
    if isinstance(source, PhysicalArray):
        source = source.data
    if isinstance(source, RangeDict):
        keys = np.arange(source.lo, source.hi, dtype=np.int64)
        return keys, keys
    if isinstance(source, np.ndarray):
        if source.ndim != 1:
            return None
        return np.arange(source.shape[0], dtype=np.int64), source
    if isinstance(source, SliceDict):
        target = source.target
        if isinstance(target, PhysicalArray):
            target = target.data
        if not (isinstance(target, np.ndarray) and target.ndim == 1):
            return None
        lo, hi = source.lo, source.hi
        keys = np.arange(lo, hi, dtype=np.int64)
        if 0 <= lo and hi <= target.shape[0]:
            return keys, target[lo:hi]
        # Out-of-bounds positions default to 0, like `lookup`.
        values = np.zeros(max(0, hi - lo), dtype=np.float64)
        clipped_lo, clipped_hi = max(lo, 0), min(hi, target.shape[0])
        if clipped_lo < clipped_hi:
            values[clipped_lo - lo:clipped_hi - lo] = target[clipped_lo:clipped_hi]
        return keys, values
    if isinstance(source, (dict, SemiringDict)):
        items = source.items() if isinstance(source, dict) else list(source.items())
        keys: list = []
        values: list = []
        for key, value in items:
            if isinstance(key, bool) or not isinstance(key, (int, np.integer)):
                return None
            if not is_scalar(value):
                return None
            keys.append(int(key))
            values.append(value)
        return (np.asarray(keys, dtype=np.int64),
                np.asarray(values, dtype=np.float64))
    return None


def _scatter(batch_dict: BatchDict, selection: np.ndarray):
    """Sum a per-lane singleton dictionary over the selected lanes.

    Returns a :class:`SemiringDict` (or 0 when every entry vanishes),
    matching the interpreter's per-iteration ``v_add`` accumulation with
    zero pruning.
    """
    if batch_dict.mask is not None:
        selection = selection[batch_dict.mask[selection]]
    if selection.size == 0:
        return 0
    keys = batch_dict.keys[selection]
    if isinstance(batch_dict.value, BatchDict):
        unique, inverse = np.unique(keys, return_inverse=True)
        out = {}
        for position in range(unique.shape[0]):
            child = _scatter(batch_dict.value, selection[inverse == position])
            if not is_zero(child):
                out[int(unique[position])] = child
        return SemiringDict(out) if out else 0
    values = np.asarray(batch_dict.value, dtype=np.float64)[selection]
    minimum, maximum = int(keys.min()), int(keys.max())
    if minimum >= 0 and maximum + 1 <= 4 * keys.size + 1024:
        totals = np.bincount(keys, weights=values, minlength=maximum + 1)
        nonzero = np.nonzero(totals)[0]
        out = {int(key): float(totals[key]) for key in nonzero}
    else:
        unique, inverse = np.unique(keys, return_inverse=True)
        sums = np.zeros(unique.shape[0], dtype=np.float64)
        np.add.at(sums, inverse, values)
        out = {int(key): float(total) for key, total in zip(unique, sums) if total != 0.0}
    return SemiringDict(out) if out else 0


def _reduce_batched(body, lanes: int):
    """Collapse the batched body result of a ``sum`` into one value."""
    if isinstance(body, Batch):
        return body.data.sum().item()
    if isinstance(body, BatchDict):
        return _scatter(body, np.arange(lanes, dtype=np.int64))
    # The body was constant across all lanes (no batched variable used).
    return v_mul(lanes, body)


def _uses_sum_binders(expr: Expr, depth: int = 0) -> bool:
    """True when ``expr`` (inside a sum body) references the sum's key or value.

    ``depth`` counts binders entered below the sum body; the sum's own
    binders appear as indices ``depth`` (value) and ``depth + 1`` (key).
    """
    if isinstance(expr, Idx):
        return depth <= expr.index < depth + 2
    for child, arity in zip(children(expr), binder_arities(expr)):
        if _uses_sum_binders(child, depth + arity):
            return True
    return False


def _is_closed(expr: Expr, depth: int = 0) -> bool:
    """True when ``expr`` references no De Bruijn index bound outside itself."""
    if isinstance(expr, Idx):
        return expr.index < depth
    return all(_is_closed(child, depth + arity)
               for child, arity in zip(children(expr), binder_arities(expr)))


#: Sentinel distinguishing "probe missed" (contributes 0) from "not probeable".
_NO_PROBE = object()


def _probe_entry(source, key: int):
    """O(1) lookup of ``key`` in a dense iteration space.

    Returns the iteration value for ``key``, 0-contribution ``None`` when the
    key is outside the space, or :data:`_NO_PROBE` when the source is not a
    range / array / array slice (whose keys are exactly the positions — for
    other collections the caller must iterate).
    """
    if isinstance(source, PhysicalArray):
        source = source.data
    if isinstance(source, RangeDict):
        return key if source.lo <= key < source.hi else None
    if isinstance(source, np.ndarray) and source.ndim == 1:
        return source[key] if 0 <= key < source.shape[0] else None
    if isinstance(source, SliceDict):
        if source.lo <= key < source.hi:
            return lookup(source.target, key)
        return None
    return _NO_PROBE


_COMPARATORS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


# ---------------------------------------------------------------------------
# Lowering: AST -> closures
# ---------------------------------------------------------------------------


class _Lowerer:
    """Translates a De Bruijn plan into a tree of evaluation closures."""

    def __init__(self) -> None:
        self.sum_count = 0
        self.merge_count = 0
        self.invariant_slots = 0
        self.sum_sources: dict[int, Expr] = {}  # slot -> source expression

    def lower(self, expr: Expr) -> _Closure:
        if isinstance(expr, Const):
            value = expr.value
            return lambda frames, rt: value
        if isinstance(expr, Sym):
            name = expr.name
            def sym_f(frames, rt):
                try:
                    return rt.env[name]
                except KeyError:
                    raise ExecutionError(f"unknown global symbol {name!r}") from None
            return sym_f
        if isinstance(expr, Idx):
            index = expr.index
            def idx_f(frames, rt):
                if index >= len(frames):
                    raise ExecutionError(f"unbound De Bruijn index %{index}")
                return frames[-1 - index]
            return idx_f
        if isinstance(expr, Var):
            raise ExecutionError("named variables must be converted to De Bruijn form first")
        if isinstance(expr, Neg):
            operand_f = self.lower(expr.operand)
            def neg_f(frames, rt):
                value = operand_f(frames, rt)
                if isinstance(value, Batch):
                    return Batch(-value.data)
                if isinstance(value, BatchDict):
                    return value.scaled(-1.0)
                return v_mul(-1, value) if not is_scalar(value) else -value
            return neg_f
        if isinstance(expr, Not):
            operand_f = self.lower(expr.operand)
            def not_f(frames, rt):
                value = operand_f(frames, rt)
                if isinstance(value, Batch):
                    return Batch(np.logical_not(value.data.astype(bool)))
                if isinstance(value, BatchDict):
                    raise Unvectorizable("boolean negation of a dictionary in batched body")
                return not truthy(value)
            return not_f
        if isinstance(expr, Add):
            return self._lower_add(expr, subtract=False)
        if isinstance(expr, Sub):
            return self._lower_add(expr, subtract=True)
        if isinstance(expr, Mul):
            return self._lower_mul(expr)
        if isinstance(expr, Div):
            left_f, right_f = self.lower(expr.left), self.lower(expr.right)
            def div_f(frames, rt):
                left, right = left_f(frames, rt), right_f(frames, rt)
                if isinstance(left, Batch) or isinstance(right, Batch):
                    divisor = _lane_data(right)
                    # A zero divisor on any lane must surface as the same
                    # ZeroDivisionError the other backends raise, not as a
                    # silent inf/nan: let the enclosing sum fall back to its
                    # scalar loop, which divides lane by lane.
                    if np.any(np.asarray(divisor) == 0):
                        raise Unvectorizable("zero divisor in batched body")
                    return Batch(np.asarray(_lane_data(left) / divisor))
                if not (is_scalar(left) and is_scalar(right)):
                    raise EvaluationError("division is only defined on scalars")
                return left / right
            return div_f
        if isinstance(expr, Cmp):
            comparator = _COMPARATORS[expr.op]
            left_f, right_f = self.lower(expr.left), self.lower(expr.right)
            def cmp_f(frames, rt):
                left, right = left_f(frames, rt), right_f(frames, rt)
                if isinstance(left, Batch) or isinstance(right, Batch):
                    return Batch(np.asarray(comparator(_lane_data(left), _lane_data(right))))
                if not (is_scalar(left) and is_scalar(right)):
                    raise EvaluationError("comparisons are only defined on scalars")
                return bool(comparator(left, right))
            return cmp_f
        if isinstance(expr, (And, Or)):
            combine = np.logical_and if isinstance(expr, And) else np.logical_or
            short_circuit_on = isinstance(expr, Or)
            left_f, right_f = self.lower(expr.left), self.lower(expr.right)
            def bool_f(frames, rt):
                left = left_f(frames, rt)
                if isinstance(left, Batch):
                    right = right_f(frames, rt)
                    return Batch(combine(left.data.astype(bool),
                                         np.asarray(_lane_data(right)).astype(bool)))
                if isinstance(left, BatchDict):
                    raise Unvectorizable("boolean connective over a dictionary in batched body")
                if truthy(left) == short_circuit_on:
                    return short_circuit_on
                right = right_f(frames, rt)
                if isinstance(right, Batch):
                    return Batch(right.data.astype(bool))
                return truthy(right)
            return bool_f
        if isinstance(expr, Get):
            return self._lower_get(expr)
        if isinstance(expr, RangeExpr):
            lo_f, hi_f = self.lower(expr.lo), self.lower(expr.hi)
            def range_f(frames, rt):
                lo, hi = lo_f(frames, rt), hi_f(frames, rt)
                if _is_batched(lo) or _is_batched(hi):
                    raise Unvectorizable("range bounds depend on batched variables")
                return RangeDict(int(lo), int(hi))
            return range_f
        if isinstance(expr, SliceGet):
            target_f = self.lower(expr.target)
            lo_f, hi_f = self.lower(expr.lo), self.lower(expr.hi)
            def slice_f(frames, rt):
                target = target_f(frames, rt)
                lo, hi = lo_f(frames, rt), hi_f(frames, rt)
                if _is_batched(target) or _is_batched(lo) or _is_batched(hi):
                    raise Unvectorizable("slice bounds depend on batched variables")
                return SliceDict(target, int(lo), int(hi))
            return slice_f
        if isinstance(expr, DictExpr):
            key_f, value_f = self.lower(expr.key), self.lower(expr.value)
            def dict_f(frames, rt):
                key = key_f(frames, rt)
                value = value_f(frames, rt)
                if isinstance(key, BatchDict):
                    raise Unvectorizable("dictionary-valued key")
                if isinstance(key, Batch) or _is_batched(value):
                    lanes = key.data.shape[0] if isinstance(key, Batch) else rt.lanes
                    return BatchDict(_key_lanes(key, lanes), _value_lanes(value, lanes))
                if is_zero(value):
                    return SemiringDict()
                return SemiringDict({normalize_key(key): value})
            return dict_f
        if isinstance(expr, IfThen):
            cond_f, then_f = self.lower(expr.cond), self.lower(expr.then)
            def if_f(frames, rt):
                cond = cond_f(frames, rt)
                if isinstance(cond, Batch):
                    mask = cond.data.astype(bool)
                    then = then_f(frames, rt)
                    if isinstance(then, Batch):
                        return Batch(np.where(mask, then.data, 0))
                    if isinstance(then, BatchDict):
                        return then.with_mask(mask)
                    if is_scalar(then):
                        return Batch(np.where(mask, then, 0))
                    raise Unvectorizable("conditional dictionary value in batched body")
                if isinstance(cond, BatchDict):
                    raise Unvectorizable("dictionary-valued condition")
                if truthy(cond):
                    return then_f(frames, rt)
                return 0
            return if_f
        if isinstance(expr, Let):
            value_f, body_f = self.lower(expr.value), self.lower(expr.body)
            def let_f(frames, rt):
                frames.append(value_f(frames, rt))
                try:
                    return body_f(frames, rt)
                finally:
                    frames.pop()
            return let_f
        if isinstance(expr, Sum):
            return self._maybe_memoize(expr, self._lower_sum(expr))
        if isinstance(expr, Merge):
            return self._maybe_memoize(expr, self._lower_merge(expr))
        raise ExecutionError(f"cannot vectorize node of type {type(expr).__name__}")

    def _maybe_memoize(self, expr: Expr, closure: _Closure) -> _Closure:
        """Cache closed (loop-invariant) sums/merges once per execution.

        Several optimizer plans re-materialize a whole storage mapping (e.g.
        the transpose of an operand) inside an inner loop; the calculus is
        pure, so a subplan with no free loop variables has the same value on
        every iteration and is computed at most once per ``run()``.
        """
        if not _is_closed(expr):
            return closure
        slot = self.invariant_slots
        self.invariant_slots += 1
        def memoized(frames, rt):
            try:
                return rt.invariants[slot]
            except KeyError:
                pass
            # A closed subplan reads no loop bindings, so it can be computed
            # outside the current batched body (if any).
            batched = rt.batched
            rt.batched = False
            try:
                value = closure(frames, rt)
            finally:
                rt.batched = batched
            rt.invariants[slot] = value
            return value
        return memoized

    # -- composite nodes -----------------------------------------------------

    def _lower_add(self, expr, *, subtract: bool) -> _Closure:
        left_f, right_f = self.lower(expr.left), self.lower(expr.right)
        def add_f(frames, rt):
            left, right = left_f(frames, rt), right_f(frames, rt)
            if isinstance(left, Batch) or isinstance(right, Batch):
                left_data, right_data = _lane_data(left), _lane_data(right)
                return Batch(np.asarray(left_data - right_data if subtract
                                        else left_data + right_data))
            if isinstance(left, BatchDict) or isinstance(right, BatchDict):
                raise Unvectorizable("dictionary addition in batched body")
            return v_sub(left, right) if subtract else v_add(left, right)
        return add_f

    def _lower_mul(self, expr) -> _Closure:
        left_f, right_f = self.lower(expr.left), self.lower(expr.right)
        def mul_f(frames, rt):
            left, right = left_f(frames, rt), right_f(frames, rt)
            left_batch, right_batch = isinstance(left, Batch), isinstance(right, Batch)
            if left_batch or right_batch:
                other = right if left_batch else left
                if isinstance(other, (Batch,)) or is_scalar(other):
                    return Batch(np.asarray(_lane_data(left) * _lane_data(right)))
                raise Unvectorizable("batched multiplication with a materialized dictionary")
            if isinstance(left, BatchDict):
                if is_scalar(right):
                    return left.scaled(right)
                raise Unvectorizable("dictionary × dictionary in batched body")
            if isinstance(right, BatchDict):
                if is_scalar(left):
                    return right.scaled(left)
                raise Unvectorizable("dictionary × dictionary in batched body")
            return v_mul(left, right)
        return mul_f

    def _lower_get(self, expr) -> _Closure:
        target_f, key_f = self.lower(expr.target), self.lower(expr.key)
        def get_f(frames, rt):
            target = target_f(frames, rt)
            key = key_f(frames, rt)
            if isinstance(key, Batch):
                if isinstance(target, PhysicalArray):
                    target = target.data
                if isinstance(target, np.ndarray) and target.ndim == 1:
                    indices = _key_lanes(key, key.data.shape[0])
                    valid = (indices >= 0) & (indices < target.shape[0])
                    gathered = target[np.clip(indices, 0, max(0, target.shape[0] - 1))] \
                        if target.shape[0] else np.zeros(indices.shape[0])
                    return Batch(np.where(valid, gathered, 0))
                if is_scalar(target) and target == 0:
                    return Batch(np.zeros(key.data.shape[0]))
                raise Unvectorizable(
                    f"vector-key lookup into {type(target).__name__}")
            if _is_batched(target) or _is_batched(key):
                raise Unvectorizable("batched lookup target")
            return lookup(target, normalize_key(key))
        return get_f

    def _lower_sum(self, expr) -> _Closure:
        self.sum_count += 1
        # This sum's identity in rt.failed_batch; fixed before lowering the
        # children, which advance the counter for their own nested sums.
        slot = self.sum_count
        self.sum_sources[slot] = expr.source
        source_f, body_f = self.lower(expr.source), self.lower(expr.body)
        # Probe short-circuiting: a body of shape `if (key == e) then t` where
        # `e` is independent of the loop variables turns the whole loop into a
        # single O(1) lookup — the plans' dense equality-probe loops
        # (`sum(<v,_> in 0:N) if (j == v) then ...`) hit this constantly.
        probe_f = then_f = None
        body = expr.body
        if isinstance(body, IfThen) and isinstance(body.cond, Cmp) and body.cond.op == "==":
            left, right = body.cond.left, body.cond.right
            if isinstance(left, Idx) and left.index == 1 and not _uses_sum_binders(right):
                probe_f = self.lower(right)
            elif isinstance(right, Idx) and right.index == 1 and not _uses_sum_binders(left):
                probe_f = self.lower(left)
            if probe_f is not None:
                then_f = self.lower(body.then)
        # rt.failed_batch is a per-execution memo: after the first
        # Unvectorizable body within one run, the sum stops re-attempting
        # batched evaluation for the rest of that run.  The state lives on
        # the runtime, not in the lowered artifact, because vectorizability
        # can be data-dependent and artifacts are shared across environments
        # by the plan cache.
        def sum_f(frames, rt):
            if rt.batched:
                raise Unvectorizable("nested sum inside a batched body")
            source = source_f(frames, rt)
            if probe_f is not None:
                # The probe expression sits in the body scope: give it dummy
                # bindings for the loop variables it provably does not use.
                frames.append(0)
                frames.append(0)
                try:
                    probe_key = probe_f(frames, rt)
                finally:
                    frames.pop()
                    frames.pop()
                if is_scalar(probe_key) and not isinstance(probe_key, (bool, np.bool_)):
                    as_float = float(probe_key)
                    if as_float.is_integer():
                        entry = _probe_entry(source, int(as_float))
                        if entry is None:
                            return 0
                        if entry is not _NO_PROBE:
                            frames.append(int(as_float))
                            frames.append(entry)
                            try:
                                return then_f(frames, rt)
                            finally:
                                frames.pop()
                                frames.pop()
                    elif _probe_entry(source, 0) is not _NO_PROBE:
                        # Integer-keyed space, non-integer probe: no match.
                        return 0
            if slot not in rt.failed_batch:
                arrays = _iteration_arrays(source)
                if arrays is not None:
                    keys, values = arrays
                    lanes = keys.shape[0]
                    if rt.profile is not None:
                        rt.profile.record_loop(slot, lanes)
                    if lanes == 0:
                        return 0
                    outer_lanes = rt.lanes
                    rt.batched, rt.lanes = True, lanes
                    frames.append(Batch(keys))
                    frames.append(Batch(values))
                    try:
                        body = body_f(frames, rt)
                    except Unvectorizable:
                        rt.failed_batch.add(slot)
                        body = _FAILED
                    finally:
                        frames.pop()
                        frames.pop()
                        rt.batched, rt.lanes = False, outer_lanes
                    if body is not _FAILED:
                        return _reduce_batched(body, lanes)
            rt.fallbacks.add(slot)
            accumulator: Any = 0
            iterations = 0
            for key, value in iter_items(source):
                iterations += 1
                frames.append(key)
                frames.append(value)
                try:
                    term = body_f(frames, rt)
                finally:
                    frames.pop()
                    frames.pop()
                accumulator = v_add(accumulator, term)
            if rt.profile is not None:
                rt.profile.record_loop(slot, iterations)
            return accumulator
        return sum_f

    def _lower_merge(self, expr) -> _Closure:
        self.merge_count += 1
        slot = ("merge", self.merge_count)
        left_f, right_f = self.lower(expr.left), self.lower(expr.right)
        body_f = self.lower(expr.body)
        def merge_f(frames, rt):
            if rt.batched:
                raise Unvectorizable("merge inside a batched body")
            rt.fallbacks.add(slot)
            left = left_f(frames, rt)
            right = right_f(frames, rt)
            by_value: dict[Any, list] = {}
            for key, value in iter_items(right):
                by_value.setdefault(merge_hashable(value), []).append(key)
            accumulator: Any = 0
            for key1, value in iter_items(left):
                matches = by_value.get(merge_hashable(value))
                if not matches:
                    continue
                for key2 in matches:
                    frames.append(key1)
                    frames.append(key2)
                    frames.append(value)
                    try:
                        term = body_f(frames, rt)
                    finally:
                        del frames[-3:]
                    accumulator = v_add(accumulator, term)
            return accumulator
        return merge_f


_FAILED = object()


def merge_hashable(value):
    if is_scalar(value):
        return float(value)
    return id(value)


# ---------------------------------------------------------------------------
# Public entry point
# ---------------------------------------------------------------------------


@dataclass
class VectorizedPlan:
    """A plan lowered to closures with whole-array NumPy sum evaluation.

    Mirrors :class:`repro.execution.codegen.CompiledPlan`: calling the object
    with an environment executes the plan.  Lowered plans hold no reference
    to any environment and can be cached and shared across catalogs with the
    same symbol schema.
    """

    plan: Expr
    function: Callable[..., Any]
    sum_count: int = 0
    sum_sources: Mapping[int, Expr] | None = None

    def __call__(self, env: Mapping[str, Any], stats: dict | None = None,
                 profile=None) -> Any:
        return self.function(env, stats, profile)

    @property
    def source(self) -> str:
        """Pseudo-source marker (there is no generated Python text)."""
        return f"<vectorized: {self.sum_count} sum loop(s), NumPy batched with loop fallback>"


def vectorize_plan(plan: Expr, name: str = "vectorized_plan") -> VectorizedPlan:
    """Lower a physical plan (De Bruijn form) for vectorized execution.

    The returned :class:`VectorizedPlan` evaluates ``sum`` loops with
    whole-array NumPy operations where the plan shape permits and falls back
    to Python loops per ``sum`` otherwise; results are identical to the
    reference interpreter.
    """
    lowerer = _Lowerer()
    root = lowerer.lower(plan)

    def function(env: Mapping[str, Any], stats: dict | None = None,
                 profile=None) -> Any:
        rt = _Runtime(env, profile=profile)
        result = root([], rt)
        if stats is not None:
            stats["sum_loops"] = lowerer.sum_count
            stats["merge_loops"] = lowerer.merge_count
            stats["fallback_sums"] = sum(
                1 for slot in rt.fallbacks if isinstance(slot, int))
            stats["fallback_merges"] = sum(
                1 for slot in rt.fallbacks if not isinstance(slot, int))
        return result

    return VectorizedPlan(plan=plan, function=function, sum_count=lowerer.sum_count,
                          sum_sources=lowerer.sum_sources)
