"""Pytest configuration for the benchmark suite (path setup only; see _config.py)."""

import os
import sys

_HERE = os.path.dirname(__file__)
_SRC = os.path.join(os.path.dirname(_HERE), "src")
for path in (_SRC, _HERE):
    if path not in sys.path:
        sys.path.insert(0, path)
