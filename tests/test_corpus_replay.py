"""Replay the fuzz regression corpus (``tests/corpus/*.py``).

Every file is a self-contained, shrunk repro of a divergence the
differential fuzzer once found (see ``docs/testing.md``).  Replaying it
executes the case under the configuration that used to diverge and asserts
the whole pipeline now agrees — so every fixed fuzz bug stays fixed, and a
regression fails tier-1 with a ten-line reproducer in hand.
"""

import pathlib

import pytest

from repro.fuzz import load_corpus_case, replay

CORPUS_DIR = pathlib.Path(__file__).resolve().parent / "corpus"
CORPUS_FILES = sorted(CORPUS_DIR.glob("*.py"))


def test_corpus_exists():
    assert CORPUS_FILES, f"no corpus files found under {CORPUS_DIR}"


@pytest.mark.parametrize("path", CORPUS_FILES, ids=lambda p: p.stem)
def test_corpus_case_replays_without_divergence(path):
    case, configs = load_corpus_case(path)
    divergence = replay(case, configs or None)
    assert divergence is None, divergence.describe()
