"""The equality-saturation runner.

Repeatedly applies a collection of rewrite rules to the e-graph until either
no rule changes the graph anymore (*saturation*) or a limit is hit (number of
iterations, number of e-nodes, wall-clock time) — the loop Egg runs for the
paper's optimizer.  The report exposes the metrics of Table 4 (iterations,
e-nodes, e-classes, memo size, elapsed time) plus per-iteration and per-rule
search/apply timing.

Three orthogonal speedups over the textbook loop (all on by default, each
individually switchable so the benchmark can reproduce the naive engine):

* ``indexed`` — rules probe the e-graph's operator index and only visit
  classes that contain a node with the pattern's root label;
* ``incremental`` — after the first iteration a rule re-matches only against
  classes dirtied since it last ran (plus their ancestor closure, where new
  matches can be rooted);  matches are produced by a generator and collection
  stops at the match budget instead of materializing everything first;
* ``scheduler="backoff"`` — an egg-style backoff scheduler bans rules whose
  match counts explode: the offending iteration still applies up to the
  budget, then the rule sits out a geometrically growing number of
  iterations while its threshold doubles.

An iteration in which at least one rule was banned never reports
``saturated``: the loop keeps going until the banned rules have been given a
final chance (or another limit fires).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .egraph import EGraph
from .rewrite import Rewrite


@dataclass
class RuleStats:
    """Cumulative per-rule counters over a whole saturation run."""

    name: str
    matches: int = 0
    applied: int = 0
    search_ms: float = 0.0
    apply_ms: float = 0.0
    bans: int = 0

    def as_row(self) -> dict:
        return {
            "rule": self.name, "matches": self.matches, "applied": self.applied,
            "search_ms": round(self.search_ms, 3), "apply_ms": round(self.apply_ms, 3),
            "bans": self.bans,
        }


@dataclass
class IterationStats:
    """Statistics of a single saturation iteration."""

    index: int
    matches: int
    applied: int
    nodes: int
    classes: int
    search_ms: float = 0.0
    apply_ms: float = 0.0
    rebuild_ms: float = 0.0
    banned: tuple[str, ...] = ()


@dataclass
class RunnerReport:
    """Outcome of one equality-saturation run (the Table 4 metrics)."""

    iterations: int = 0
    nodes: int = 0
    classes: int = 0
    memo: int = 0
    time_ms: float = 0.0
    stop_reason: str = "saturated"
    per_iteration: list[IterationStats] = field(default_factory=list)
    rule_stats: dict[str, RuleStats] = field(default_factory=dict)

    @property
    def total_matches(self) -> int:
        return sum(stats.matches for stats in self.per_iteration)

    def as_row(self) -> dict:
        return {
            "time_ms": round(self.time_ms, 3),
            "iterations": self.iterations,
            "nodes": self.nodes,
            "classes": self.classes,
            "memos": self.memo,
            "stop_reason": self.stop_reason,
        }


class SimpleScheduler:
    """Run every rule every iteration (the textbook behaviour)."""

    name = "simple"

    def allow(self, rule_index: int, iteration: int) -> bool:
        return True

    def record(self, rule_index: int, iteration: int, matches: int) -> bool:
        return False

    def threshold(self, rule_index: int) -> int | None:
        return None


class BackoffScheduler:
    """Egg-style exponential backoff on rules whose match counts explode.

    Each rule starts with a match threshold (its own ``match_limit`` or the
    runner-wide budget).  When a search produces more matches than the
    threshold the rule is banned for ``ban_length`` iterations and both the
    threshold and the ban length double — rules with small, precise match
    sets run every iteration while expansive rules are throttled
    geometrically.
    """

    name = "backoff"

    def __init__(self, rules: Sequence[Rewrite], match_limit: int,
                 ban_length: int = 4):
        self._threshold = [rule.match_limit or match_limit for rule in rules]
        self._ban_length = [ban_length] * len(rules)
        self._banned_until = [0] * len(rules)

    def allow(self, rule_index: int, iteration: int) -> bool:
        return iteration >= self._banned_until[rule_index]

    def record(self, rule_index: int, iteration: int, matches: int) -> bool:
        if matches <= self._threshold[rule_index]:
            return False
        self._banned_until[rule_index] = iteration + 1 + self._ban_length[rule_index]
        self._threshold[rule_index] *= 2
        self._ban_length[rule_index] *= 2
        return True

    def threshold(self, rule_index: int) -> int:
        """Current ban threshold — the runner collects one match past it so
        repeated explosions keep triggering (doubled) bans."""
        return self._threshold[rule_index]


class Runner:
    """Drives rule application until saturation or a limit is reached."""

    def __init__(self, egraph: EGraph, rules: Sequence[Rewrite], *,
                 iter_limit: int = 30, node_limit: int = 50_000,
                 time_limit: float = 10.0, match_limit_per_rule: int = 2_000,
                 scheduler: str = "backoff", indexed: bool = True,
                 incremental: bool = True, ban_length: int = 4):
        self.egraph = egraph
        self.rules = list(rules)
        self.iter_limit = iter_limit
        self.node_limit = node_limit
        self.time_limit = time_limit
        self.match_limit_per_rule = match_limit_per_rule
        self.indexed = indexed
        self.incremental = incremental
        if isinstance(scheduler, str):
            if scheduler == "backoff":
                self.scheduler = BackoffScheduler(self.rules, match_limit_per_rule,
                                                  ban_length=ban_length)
            elif scheduler == "simple":
                self.scheduler = SimpleScheduler()
            else:
                raise ValueError(
                    f"unknown scheduler {scheduler!r}: use 'backoff', 'simple', "
                    "or pass a scheduler object")
        else:
            self.scheduler = scheduler  # caller-provided scheduler object

    # ------------------------------------------------------------------

    def _candidates(self, rule: Rewrite, pool: dict[int, None] | None):
        """Candidate root classes for one rule's search.

        ``pool`` is ``None`` on the first (full) iteration; afterwards it is
        the dirty-ancestor pool of this iteration.  The operator index cuts
        either set down to classes that contain the pattern's root label.
        """
        label = rule.root_label
        if not self.indexed or label is None:
            if pool is None:
                return None  # search_iter scans every class (no index probe)
            return sorted(pool)
        labelled = self.egraph.classes_with_label(label)
        if pool is not None:
            labelled = [identifier for identifier in labelled if identifier in pool]
        # Ascending class id = creation order = the order the naive full scan
        # visits classes in; keeping it makes the engines apply identical
        # match sequences (and extraction tie-breaks) when nothing truncates.
        labelled.sort()
        return labelled

    def run(self) -> RunnerReport:
        report = RunnerReport()
        report.rule_stats = {rule.name: RuleStats(rule.name) for rule in self.rules}
        egraph = self.egraph
        scheduler = self.scheduler
        start = time.perf_counter()
        # Marks accumulated while the caller built the graph are irrelevant:
        # the first iteration searches everything.
        egraph.take_dirty()
        pool: dict[int, None] | None = None
        carry: list[int] = []
        # Dynamic-application memo (incremental mode only): re-transforming
        # an unchanged (node, term, subst) is a guaranteed no-op.
        apply_memo: dict | None = {} if self.incremental else None
        # Dirty classes a banned rule missed while sitting out; replayed
        # into its candidate set when the ban expires.
        banned_backlog: dict[int, dict[int, None]] = {}
        for iteration in range(1, self.iter_limit + 1):
            if self.incremental and iteration > 1:
                # Classes dirtied during the previous iteration (apply phase
                # and rebuild), widened to their ancestors: only there can a
                # rule that already ran find a new match.
                pool = egraph.ancestors_closure(carry)
                carry = []
            matches_found = 0
            applied = 0
            changed = False
            banned_names: list[str] = []
            iter_search_ms = 0.0
            iter_apply_ms = 0.0
            for rule_index, rule in enumerate(self.rules):
                stats = report.rule_stats[rule.name]
                if not scheduler.allow(rule_index, iteration):
                    banned_names.append(rule.name)
                    if self.incremental and pool is not None:
                        banned_backlog.setdefault(rule_index, {}).update(pool)
                    continue
                if self.incremental:
                    # Pick up classes dirtied by earlier rules this iteration
                    # so in-iteration cascades are not delayed (the naive
                    # full rescan sees them too).
                    fresh = egraph.take_dirty()
                    if fresh:
                        carry.extend(fresh)
                        if pool is not None:
                            egraph.ancestors_closure(fresh, visited=pool)
                limit = rule.match_limit or self.match_limit_per_rule
                rule_pool = pool
                backlog = banned_backlog.pop(rule_index, None)
                if backlog and pool is not None:
                    # The rule comes back from a ban: also re-match the
                    # classes that were dirtied while it sat out.
                    rule_pool = dict(backlog)
                    rule_pool.update(pool)
                t0 = time.perf_counter()
                matches: list[tuple[int, dict]] = []
                candidates = self._candidates(rule, rule_pool)
                if self.incremental:
                    # Collect one match beyond the scheduler's current ban
                    # threshold (which doubles per ban) so "hit the budget"
                    # and "exploded past it" stay distinguishable and
                    # repeated explosions keep triggering bans.
                    threshold_of = getattr(scheduler, "threshold", None)
                    threshold = threshold_of(rule_index) if threshold_of else None
                    cap = limit if threshold is None else max(limit, threshold)
                    for match in rule.search_iter(egraph, candidates,
                                                  use_index=self.indexed):
                        matches.append(match)
                        if len(matches) > cap:
                            break
                else:
                    # Textbook behaviour: materialize every match, then
                    # truncate (kept for the before/after benchmark).
                    matches = list(rule.search_iter(egraph, candidates,
                                                    use_index=self.indexed))
                t1 = time.perf_counter()
                if scheduler.record(rule_index, iteration, len(matches)):
                    stats.bans += 1
                    if self.incremental:
                        # The unapplied tail of this explosion lives in the
                        # candidate set just searched; remember it so the
                        # rule revisits those classes when the ban expires
                        # (they may never be re-dirtied otherwise).
                        backlog = banned_backlog.setdefault(rule_index, {})
                        if candidates is None:
                            backlog.update(
                                (eclass.identifier, None)
                                for eclass in list(egraph.classes()))
                        else:
                            backlog.update(dict.fromkeys(candidates))
                # Matches *materialized* by the search: the naive loop pays
                # for every match each iteration, the incremental loop only
                # for the collected budget — the same-named column in both
                # engines' reports measures the same unit of work.
                found = len(matches)
                matches_found += found
                for identifier, subst in matches[:limit]:
                    if rule.apply_match(egraph, identifier, subst, memo=apply_memo):
                        applied += 1
                        stats.applied += 1
                        changed = True
                t2 = time.perf_counter()
                stats.matches += found
                stats.search_ms += (t1 - t0) * 1_000.0
                stats.apply_ms += (t2 - t1) * 1_000.0
                iter_search_ms += (t1 - t0) * 1_000.0
                iter_apply_ms += (t2 - t1) * 1_000.0
            t3 = time.perf_counter()
            egraph.rebuild()
            rebuild_ms = (time.perf_counter() - t3) * 1_000.0
            if self.incremental:
                carry.extend(egraph.take_dirty())
            else:
                egraph.take_dirty()  # keep the mark buffer bounded
            report.iterations = iteration
            report.per_iteration.append(IterationStats(
                index=iteration,
                matches=matches_found,
                applied=applied,
                nodes=egraph.num_nodes,
                classes=egraph.num_classes,
                search_ms=round(iter_search_ms, 3),
                apply_ms=round(iter_apply_ms, 3),
                rebuild_ms=round(rebuild_ms, 3),
                banned=tuple(banned_names),
            ))
            elapsed = time.perf_counter() - start
            if not changed and not banned_names:
                report.stop_reason = "saturated"
                break
            if egraph.num_nodes >= self.node_limit:
                report.stop_reason = "node_limit"
                break
            if elapsed >= self.time_limit:
                report.stop_reason = "time_limit"
                break
        else:
            report.stop_reason = "iter_limit"
        report.nodes = egraph.num_nodes
        report.classes = egraph.num_classes
        report.memo = egraph.memo_size
        report.time_ms = (time.perf_counter() - start) * 1_000.0
        return report


def saturate(expr_class: int, egraph: EGraph, rules: Iterable[Rewrite],
             **limits) -> RunnerReport:
    """Convenience wrapper: run the rules on an already-populated e-graph."""
    runner = Runner(egraph, list(rules), **limits)
    return runner.run()
