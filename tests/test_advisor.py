"""Tests for the workload-driven storage format advisor (repro.advisor).

Covers: per-format legality (candidates_for / candidate_formats), the
re-format conversions behind recommendations, hypothetical statistics
(Statistics.with_formats), the search itself (the advisor must climb out of
a deliberately bad starting configuration), applying recommendations
through sessions (epoch bumps + transparent statement re-preparation), the
measured-validation mode, and the harness shootout.
"""

import numpy as np
import pytest

from repro import storel
from repro.advisor import Advisor, Recommendation, WorkloadQuery, as_workload
from repro.core.statistics import Statistics
from repro.data.synthetic import random_dense_vector, random_sparse_matrix
from repro.kernels import KERNELS
from repro.sdqlite.errors import StorageError
from repro.session import Session
from repro.storage import (
    BandFormat,
    Catalog,
    COOFormat,
    CSFFormat,
    CSRFormat,
    DenseFormat,
    DOKFormat,
    LowerTriangularFormat,
    TensorStats,
    TrieFormat,
    ZOrderFormat,
    candidate_formats,
    reformat,
    reformat_in_catalog,
)

BATAX_SRC = KERNELS["BATAX"].source


def batax_catalog(n=48, density=2.0 ** -3, a_format=TrieFormat, seed=7) -> Catalog:
    a = random_sparse_matrix(n, n, density, seed=seed)
    x = random_dense_vector(n, seed=seed + 1)
    return (Catalog()
            .add(a_format.from_dense("A", a))
            .add(DenseFormat.from_dense("X", x))
            .add_scalar("beta", 0.5))


# ---------------------------------------------------------------------------
# candidates_for / candidate_formats
# ---------------------------------------------------------------------------


class TestCandidates:
    def test_rank_legality(self):
        rank1 = TensorStats(shape=(8,), nnz=3)
        rank2 = TensorStats(shape=(8, 8), nnz=3, square=True)
        rank3 = TensorStats(shape=(4, 4, 4), nnz=3)
        assert DenseFormat.candidates_for(rank1)
        assert COOFormat.candidates_for(rank3)
        assert CSRFormat.candidates_for(rank2)
        assert not CSRFormat.candidates_for(rank1)
        assert not CSRFormat.candidates_for(rank3)
        assert CSFFormat.candidates_for(rank3)
        assert not CSFFormat.candidates_for(rank2)
        assert DOKFormat.candidates_for(rank1)
        assert TrieFormat.candidates_for(rank3)

    def test_special_format_preconditions(self):
        tri = TensorStats(shape=(8, 8), nnz=10, square=True, lower_triangular=True)
        assert LowerTriangularFormat.candidates_for(tri)
        assert not LowerTriangularFormat.candidates_for(
            TensorStats(shape=(8, 8), nnz=10, square=True))
        band = TensorStats(shape=(8, 8), nnz=10, square=True, tridiagonal=True)
        assert BandFormat.candidates_for(band)
        assert ZOrderFormat.candidates_for(
            TensorStats(shape=(8, 8), nnz=10, square=True, pow2_square=True))
        assert not ZOrderFormat.candidates_for(
            TensorStats(shape=(6, 6), nnz=10, square=True, pow2_square=False))

    def test_tensor_stats_of_detects_structure(self):
        lower = np.tril(np.ones((8, 8)))
        stats = TensorStats.of(CSRFormat.from_dense("L", lower))
        assert stats.square and stats.lower_triangular and stats.pow2_square
        assert not stats.tridiagonal

    def test_candidate_formats_lists_legal_menu(self):
        fmt = CSRFormat.from_dense("A", np.tril(np.ones((8, 8))))
        names = candidate_formats(fmt)
        assert "csr" in names and "lower_triangular" in names and "zorder" in names
        assert "band" not in names and "csf" not in names
        general = candidate_formats(fmt, include_special=False)
        assert "lower_triangular" not in general and "csr" in general


# ---------------------------------------------------------------------------
# reformat / reformat_in_catalog
# ---------------------------------------------------------------------------


class TestReformat:
    def test_reformat_preserves_contents(self):
        dense = np.tril(np.random.default_rng(0).random((8, 8)))
        fmt = TrieFormat.from_dense("A", dense)
        for kind in ("dense", "coo", "csr", "csc", "dcsr", "dok",
                     "lower_triangular", "zorder"):
            converted = reformat(fmt, kind)
            assert converted.format_name == kind
            assert converted.name == "A"
            np.testing.assert_allclose(converted.to_dense(), dense)

    def test_reformat_same_kind_is_identity(self):
        fmt = CSRFormat.from_dense("A", np.eye(4))
        assert reformat(fmt, "csr") is fmt

    def test_reformat_unknown_kind(self):
        with pytest.raises(StorageError):
            reformat(CSRFormat.from_dense("A", np.eye(4)), "nonexistent")

    def test_reformat_in_catalog_bumps_schema_epoch(self):
        catalog = Catalog().add(CSRFormat.from_dense("A", np.eye(4)))
        before = catalog.schema_version
        converted = reformat_in_catalog(catalog, "A", "trie")
        assert catalog.tensors["A"] is converted
        assert catalog.schema_version == before + 1
        # No-op re-format leaves the epochs untouched.
        version = catalog.version
        reformat_in_catalog(catalog, "A", "trie")
        assert catalog.version == version
        with pytest.raises(StorageError):
            reformat_in_catalog(catalog, "missing", "csr")


# ---------------------------------------------------------------------------
# Statistics.with_formats
# ---------------------------------------------------------------------------


def test_with_formats_matches_full_rebuild():
    catalog = batax_catalog()
    stats = Statistics.from_catalog(catalog)
    candidate = reformat(catalog.tensors["A"], "csr")
    hypothetical = stats.with_formats([(catalog.tensors["A"], candidate)])

    rebuilt_catalog = Catalog()
    rebuilt_catalog.add(candidate).add(catalog.tensors["X"])
    rebuilt_catalog.add_scalar("beta", 0.5)
    rebuilt = Statistics.from_catalog(rebuilt_catalog)

    assert hypothetical.kinds == rebuilt.kinds
    assert hypothetical.scalar_values == rebuilt.scalar_values
    assert hypothetical.segments == rebuilt.segments
    assert set(hypothetical.profiles) == set(rebuilt.profiles)
    # The original is untouched (trie statistics still in place).
    assert stats.kind("A_trie") == "trie"
    assert hypothetical.kind("A_pos2") == "array"


# ---------------------------------------------------------------------------
# the search
# ---------------------------------------------------------------------------


class TestAdvise:
    def test_advisor_improves_on_naive_baseline(self):
        catalog = batax_catalog(a_format=TrieFormat)
        recommendation = Session(catalog).advise(BATAX_SRC)
        assert isinstance(recommendation, Recommendation)
        assert set(recommendation.formats) == {"A", "X"}
        assert recommendation.best.estimated_cost < recommendation.baseline.estimated_cost
        assert recommendation.estimated_speedup > 1.0
        assert recommendation.searched >= len(recommendation.candidates_per_tensor)
        # Catalog untouched by advice alone.
        assert catalog.tensors["A"].format_name == "trie"

    def test_ranked_is_sorted_and_summary_renders(self):
        recommendation = Session(batax_catalog()).advise(BATAX_SRC)
        costs = [c.estimated_cost for c in recommendation.ranked]
        assert costs == sorted(costs)
        text = recommendation.summary()
        assert "storage recommendation" in text and "advised" in text

    def test_weighted_workload_and_query_labels(self):
        catalog = batax_catalog()
        workload = [(BATAX_SRC, 3.0), (KERNELS["SUMMM"].source, 1.0)]
        # SUMMM references B, which is not registered — restrict to queries
        # over registered tensors instead.
        workload = [(BATAX_SRC, 3.0),
                    ("sum(<(i,j), a> in A) { () -> a }", 1.0)]
        recommendation = Session(catalog).advise(workload)
        assert set(recommendation.best.per_query) == {"q1", "q2"}

    def test_workload_normalization(self):
        queries = as_workload(BATAX_SRC)
        assert len(queries) == 1 and queries[0].weight == 1.0
        queries = as_workload([WorkloadQuery(BATAX_SRC, 2.0, "hot")])
        assert queries[0].name == "hot"
        queries = as_workload([BATAX_SRC, BATAX_SRC], weights=[1.0, 9.0])
        assert queries[1].weight == 9.0
        with pytest.raises(StorageError):
            as_workload([])

    def test_restricting_tensors(self):
        catalog = batax_catalog()
        recommendation = Session(catalog).advise(BATAX_SRC, tensors=["A"])
        assert set(recommendation.formats) == {"A"}
        with pytest.raises(StorageError):
            Session(catalog).advise(BATAX_SRC, tensors=["missing"])

    def test_workload_without_registered_tensors(self):
        catalog = batax_catalog()
        with pytest.raises(StorageError):
            Session(catalog).advise("sum(<i, v> in Z) { i -> v }")

    def test_conversion_cache_invalidated_on_catalog_mutation(self):
        catalog = batax_catalog(a_format=COOFormat)
        session = Session(catalog)
        advisor = Advisor(session)
        advisor.advise(BATAX_SRC)
        new_a = np.zeros((48, 48))
        new_a[0, 0] = 1.0
        session.replace_format(COOFormat.from_dense("A", new_a))
        advisor.advise(BATAX_SRC)
        # The cached csr conversion must reflect the *new* contents.
        np.testing.assert_allclose(advisor._format_for("A", "csr").to_dense(), new_a)

    def test_measure_mode_ranks_by_measurement(self):
        catalog = batax_catalog(n=24)
        recommendation = Session(catalog).advise(
            BATAX_SRC, measure=True, top_k=2, measure_repeats=1, refine_steps=1)
        assert recommendation.measured
        top = recommendation.ranked[0]
        assert top.measured_ms is not None and top.measured_ms > 0
        measured = [c.measured_ms for c in recommendation.ranked
                    if c.measured_ms is not None]
        assert measured == sorted(measured)
        assert len(measured) >= 2


# ---------------------------------------------------------------------------
# applying recommendations
# ---------------------------------------------------------------------------


class TestApply:
    def test_apply_recommendation_reformats_and_reprepares(self):
        catalog = batax_catalog(a_format=TrieFormat)
        session = Session(catalog, backend="vectorize")
        statement = session.prepare(BATAX_SRC, dense_shape=(48,))
        before = statement.execute()
        schema_before = catalog.schema_version

        recommendation = session.advise(BATAX_SRC)
        session.apply_recommendation(recommendation)
        assert catalog.tensors["A"].format_name == recommendation.formats["A"]
        assert catalog.schema_version > schema_before
        assert statement.is_stale
        after = statement.execute()        # transparently re-prepared
        np.testing.assert_allclose(after, before, rtol=1e-9, atol=1e-9)
        assert not statement.is_stale

    def test_apply_is_noop_for_unchanged_formats(self):
        catalog = batax_catalog(a_format=CSRFormat)
        session = Session(catalog)
        current = {name: fmt.format_name for name, fmt in catalog.tensors.items()}
        recommendation = Recommendation(
            formats=current,
            baseline=None, ranked=[], candidates_per_tensor={})
        version = catalog.version
        session.apply_recommendation(recommendation)
        assert catalog.version == version

    def test_apply_unknown_tensor_raises(self):
        session = Session(batax_catalog())
        recommendation = Recommendation(
            formats={"missing": "csr"},
            baseline=None, ranked=[], candidates_per_tensor={})
        with pytest.raises(StorageError):
            session.apply_recommendation(recommendation)

    def test_storel_advise_one_shot_apply(self):
        catalog = batax_catalog(a_format=TrieFormat)
        recommendation = storel.advise(BATAX_SRC, catalog, apply=True)
        assert catalog.tensors["A"].format_name == recommendation.formats["A"]
        assert catalog.tensors["A"].format_name != "trie"
        # The re-formatted catalog still computes the right answer.
        result = storel.run(BATAX_SRC, catalog, dense_shape=(48,))
        a = catalog.tensors["A"].to_dense()
        x = catalog.tensors["X"].to_dense()
        np.testing.assert_allclose(result, 0.5 * a.T @ (a @ x), rtol=1e-8)

    def test_changes_reports_only_real_changes(self):
        catalog = batax_catalog(a_format=TrieFormat)
        recommendation = Session(catalog).advise(BATAX_SRC)
        changes = recommendation.changes(catalog)
        assert "A" in changes and changes["A"][0] == "trie"
        for name, (old, new) in changes.items():
            assert old != new


# ---------------------------------------------------------------------------
# harness shootout
# ---------------------------------------------------------------------------


def test_advisor_shootout_measures_configurations():
    from repro.workloads.harness import advisor_shootout

    catalog = batax_catalog(n=24)
    configurations = {
        "trie": {"A": "trie", "X": "dense"},
        "csr": {"A": "csr", "X": "dense"},
    }
    measurements = advisor_shootout(KERNELS["BATAX"], catalog, configurations,
                                    repeats=1, rounds=1)
    assert [m.system for m in measurements] == ["STOREL[trie]", "STOREL[csr]"]
    for measurement in measurements:
        assert measurement.status == "ok" and measurement.correct
        assert measurement.mean_ms is not None
        assert "A:" in measurement.detail
    # The shootout leaves the input catalog untouched.
    assert catalog.tensors["A"].format_name == "trie"
