"""Random data generation and storage-format assignment for fuzz cases.

Builds on :mod:`repro.data.synthetic` (every generator there takes an
explicit ``rng``, so a whole case derives from one master seed).  The format
layer is *precondition-aware*: a tensor's dense data is fabricated first
(with a structure class drawn by the schema generator — general, lower
triangular, tridiagonal, power-of-two square), then the set of formats that
can legally store it is computed from the same
:meth:`~repro.storage.formats.StorageFormat.candidates_for` legality rules
the advisor uses.  Drawing assignments from that set means every legal
format — including the special formats of Sec. 4 — is exercised, and no
illegal (format, data) pair is ever constructed.
"""

from __future__ import annotations

import random
from typing import Mapping

import numpy as np

from ..data.synthetic import random_dense_tensor, random_structured_matrix
from ..storage.catalog import Catalog
from ..storage.convert import ALL_FORMATS
from ..storage.formats import DenseFormat, TensorStats
from .genprog import Schema, TensorSpec


def materialize_tensor(spec: TensorSpec, rng: np.random.Generator) -> np.ndarray:
    """Fabricate dense data for ``spec``, honouring its structure class."""
    if spec.rank == 2 and spec.structure != "general":
        return random_structured_matrix(spec.shape[0], spec.density,
                                        structure=spec.structure, rng=rng)
    return random_dense_tensor(spec.shape, spec.density, rng=rng)


def legal_format_names(array: np.ndarray) -> list[str]:
    """Every format (general and special) that can legally store ``array``.

    Computed from the per-format :meth:`candidates_for` legality rules over
    the tensor's :class:`~repro.storage.formats.TensorStats`, i.e. exactly
    the candidate set the workload advisor would enumerate.
    """
    stats = TensorStats.of(DenseFormat("probe", array))
    return sorted(name for name, cls in ALL_FORMATS.items()
                  if cls.candidates_for(stats))


def assign_formats(tensors: Mapping[str, np.ndarray],
                   rng: random.Random) -> dict[str, str]:
    """Draw one legal storage format per tensor."""
    return {name: rng.choice(legal_format_names(array))
            for name, array in tensors.items()}


def materialize_schema(schema: Schema,
                       rng: np.random.Generator) -> dict[str, np.ndarray]:
    """Dense data for every tensor of ``schema``."""
    return {spec.name: materialize_tensor(spec, rng) for spec in schema.tensors}


def generate_scalars(schema: Schema, rng: random.Random) -> dict[str, float]:
    """Values for the schema's global scalars (occasionally zero or negative)."""
    return {name: rng.choice([0.0, 0.5, 1.0, 2.0, -1.5, 3.0])
            for name in schema.scalars}


def build_catalog(tensors: Mapping[str, np.ndarray], formats: Mapping[str, str],
                  scalars: Mapping[str, float]) -> Catalog:
    """Register every tensor in its assigned format, plus the scalars."""
    catalog = Catalog()
    for name, array in tensors.items():
        catalog.add(ALL_FORMATS[formats[name]].from_dense(name, np.asarray(array,
                                                                           dtype=np.float64)))
    for name, value in scalars.items():
        catalog.add_scalar(name, value)
    return catalog
