"""Tests for the differential oracle, the shrinker and the corpus format.

Three layers:

* the comparison layer itself (``canonical`` / ``results_match``) — the one
  place result equality is defined;
* a seeded smoke campaign over the real pipeline (all backends, fast and
  legacy saturation engines) that must be divergence-free;
* an *injected bug* — the optimizer's chosen plan is corrupted by flipping a
  multiplication into an addition, mimicking a wrong rewrite rule — which the
  oracle must catch, the shrinker must minimize to a tiny repro, and the
  corpus round-trip must replay.
"""

import numpy as np
import pytest

from repro.core.optimizer import Optimizer
from repro.fuzz import (
    CaseSkipped,
    FuzzCase,
    OracleConfig,
    campaign,
    canonical,
    check_case,
    generate_case,
    load_corpus_case,
    render_corpus_case,
    replay,
    results_match,
    shrink_case,
)
from repro.sdqlite import node_count, parse_expr
from repro.sdqlite.ast import Add, Mul, children, postorder, rebuild, symbols
from repro.sdqlite.values import SemiringDict


# ---------------------------------------------------------------------------
# canonical / results_match: the single comparison layer
# ---------------------------------------------------------------------------


def test_canonical_prunes_near_zeros_and_normalizes():
    value = SemiringDict({0: 1.0, 1: {2: 1e-15}, 3: True})
    assert canonical(value) == {0: 1.0, 3: 1}
    assert canonical(np.float64(2.5)) == 2.5
    assert canonical(0.0) == 0.0


def test_results_match_tolerates_missing_keys_as_zero():
    assert results_match({0: 1.0}, {0: 1.0, 1: 1e-12})
    assert results_match({}, 0.0)
    assert results_match(0.0, {0: {1: 1e-12}})
    assert not results_match({0: 1.0}, {0: 1.0, 1: 0.5})
    assert not results_match({0: 1.0}, {})
    assert not results_match(1.0, {0: 1.0})


def test_results_match_is_tolerant_to_float_reassociation():
    left = {0: 0.1 + 0.2}
    right = {0: 0.3}
    assert results_match(left, right)
    assert not results_match({0: 1.0}, {0: 1.0 + 1e-3})


# ---------------------------------------------------------------------------
# the oracle on the real pipeline
# ---------------------------------------------------------------------------


def _mmm_case() -> FuzzCase:
    rng = np.random.default_rng(0)
    return FuzzCase(
        seed=0,
        program=parse_expr("sum(<(i,j), a> in T0, <(j2,k), b> in T1) "
                           "if (j == j2) then { (i, k) -> a * b * c0 }"),
        tensors={"T0": rng.uniform(0.1, 1, (4, 3)) * (rng.random((4, 3)) < 0.6),
                 "T1": rng.uniform(0.1, 1, (3, 4)) * (rng.random((3, 4)) < 0.6)},
        formats={"T0": "csr", "T1": "csc"},
        scalars={"c0": 2.0},
    )


def test_check_case_agrees_on_handwritten_kernel_all_engines():
    config = OracleConfig().with_legacy()
    assert sorted(config.pairs())[0][0] in ("egraph", "egraph-legacy", "greedy", "unoptimized")
    assert check_case(_mmm_case(), config) is None


def test_check_case_skips_when_reference_fails():
    case = _mmm_case().replace(program=parse_expr("1 / 0"))
    with pytest.raises(CaseSkipped):
        check_case(case)


def test_seeded_smoke_campaign_is_divergence_free():
    report = campaign(seed=7, cases=25, legacy_every=5, shrink=False)
    assert report.cases_run == 25
    assert report.ok, "\n".join(d.describe() for d in report.divergences)
    assert "OK" in report.summary()


# ---------------------------------------------------------------------------
# injected bug: flip Mul -> Add in the optimizer's chosen plan
# ---------------------------------------------------------------------------


def _flip_first_mul(expr):
    for node in postorder(expr):
        if isinstance(node, Mul):
            target = node
            break
    else:
        return expr

    def rewrite(node):
        if node is target:
            return Add(node.left, node.right)
        kids = [rewrite(child) for child in children(node)]
        return rebuild(node, kids) if kids else node

    return rewrite(expr)


@pytest.fixture
def broken_optimizer(monkeypatch):
    """An optimizer whose chosen plan has one Mul flipped into an Add."""
    real = Optimizer.optimize

    def corrupt(self, program, mappings, method="egraph"):
        result = real(self, program, mappings, method=method)
        result.plan = _flip_first_mul(result.plan)
        return result

    monkeypatch.setattr(Optimizer, "optimize", corrupt)


def test_injected_bug_is_caught_shrunk_and_serialized(broken_optimizer, tmp_path):
    report = campaign(seed=11, cases=60, legacy_every=0, shrink=True,
                      out_dir=tmp_path, max_failures=1)
    assert not report.ok, "the injected Mul->Add bug was not detected"
    divergence = report.divergences[0]
    assert divergence.method in ("greedy", "egraph")
    # Shrinking must produce a tiny, self-contained repro.
    assert node_count(divergence.case.program) <= 25
    assert len(divergence.case.tensors) <= 2
    rendered = render_corpus_case(divergence)
    assert rendered.count("\n") <= 10, rendered
    assert report.corpus_paths, "no corpus file written"

    # The corpus file round-trips: load it and re-check under the recorded
    # configs.  Under the still-broken optimizer it diverges...
    case, configs = load_corpus_case(report.corpus_paths[0])
    assert replay(case, configs) is not None


def test_corpus_case_replays_clean_once_bug_is_fixed(tmp_path):
    # Build a corpus file from an injected-bug run, then replay it against
    # the healthy code: the regression test passes once the bug is gone.
    real = Optimizer.optimize

    def corrupt(self, program, mappings, method="egraph"):
        result = real(self, program, mappings, method=method)
        result.plan = _flip_first_mul(result.plan)
        return result

    try:
        Optimizer.optimize = corrupt
        report = campaign(seed=11, cases=60, legacy_every=0, shrink=True,
                          out_dir=tmp_path, max_failures=1)
    finally:
        Optimizer.optimize = real
    assert report.corpus_paths
    case, configs = load_corpus_case(report.corpus_paths[0])
    assert replay(case, configs) is None


# ---------------------------------------------------------------------------
# shrinker mechanics
# ---------------------------------------------------------------------------


def test_shrinker_reduces_an_artificial_divergence():
    # A fake predicate: "fails" whenever the program still references T0 and
    # T0 still has a non-zero somewhere.  The shrinker should strip the
    # program to a bare reference and the tensor to a single non-zero.
    from repro.fuzz.oracle import Divergence
    import repro.fuzz.shrink as shrink_module

    case = _mmm_case()
    divergence = Divergence(case, "greedy", "compile", expected=0, actual=1)

    def fake_check(candidate, config):
        if "T0" not in candidate.tensors or not candidate.tensors["T0"].any():
            return None
        if "T0" not in symbols(candidate.program):
            return None
        return Divergence(candidate, "greedy", "compile", expected=0, actual=1)

    real_check = shrink_module.check_case
    shrink_module.check_case = fake_check
    try:
        shrunk = shrink_case(divergence, OracleConfig())
    finally:
        shrink_module.check_case = real_check
    assert node_count(shrunk.case.program) < node_count(case.program)
    assert np.count_nonzero(shrunk.case.tensors["T0"]) <= 1
    assert "T1" not in shrunk.case.tensors  # garbage-collected
