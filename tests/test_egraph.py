"""Tests for the equality-saturation engine (union-find, e-graph, matching, extraction)."""

import pytest

from repro.egraph import (
    EGraph,
    ENode,
    Extractor,
    Pattern,
    Rewrite,
    Runner,
    UnionFind,
    ast_size_cost,
    bidirectional,
    extract_smallest,
    parse_pattern,
    var_independent_of,
)
from repro.sdqlite import parse_expr, to_debruijn
from repro.sdqlite.ast import Add, Const, Idx, Mul, Sym, Var


def db(source: str):
    return to_debruijn(parse_expr(source))


# ---------------------------------------------------------------------------
# union-find
# ---------------------------------------------------------------------------


def test_unionfind_bashorizontal():
    uf = UnionFind()
    ids = [uf.make_set() for _ in range(5)]
    assert len(uf) == 5
    assert all(uf.find(i) == i for i in ids)
    uf.union(0, 1)
    uf.union(3, 4)
    assert uf.connected(0, 1)
    assert not uf.connected(1, 2)
    uf.union(1, 3)
    assert uf.connected(0, 4)
    # representative is stable under repeated finds
    assert uf.find(0) == uf.find(4)


# ---------------------------------------------------------------------------
# e-graph core
# ---------------------------------------------------------------------------


def test_add_expr_hashconses_identical_subterms():
    egraph = EGraph()
    expr = db("(a + b) * (a + b)")
    root = egraph.add_expr(expr)
    # a, b, a+b, (a+b)*(a+b): 4 classes only
    assert egraph.num_classes == 4
    assert egraph.find(root) == root
    # adding the same expression again creates nothing new
    again = egraph.add_expr(expr)
    assert egraph.find(again) == egraph.find(root)
    assert egraph.num_classes == 4
    egraph.sanity_check()


def test_union_and_congruence_closure():
    egraph = EGraph()
    a = egraph.add_expr(Sym("a"))
    b = egraph.add_expr(Sym("b"))
    fa = egraph.add_expr(Mul(Sym("a"), Const(2)))
    fb = egraph.add_expr(Mul(Sym("b"), Const(2)))
    assert not egraph.equivalent(fa, fb)
    egraph.union(a, b)
    egraph.rebuild()
    # congruence: a == b implies a*2 == b*2
    assert egraph.equivalent(fa, fb)
    egraph.sanity_check()


def test_best_term_tracks_smallest_representative():
    egraph = EGraph()
    big = db("a * 1 + 0")
    small = db("a")
    root = egraph.add_expr(big)
    other = egraph.add_expr(small)
    egraph.union(root, other)
    egraph.rebuild()
    assert egraph.best_term(root) == Sym("a")


def test_free_vars_analysis():
    egraph = EGraph()
    # sum(<k,v> in A) %0 * %2  : %2 inside the body is free (refers outside)
    expr = to_debruijn(parse_expr("sum(<k, v> in A) v * 2"))
    inner = Mul(Idx(0), Idx(2))
    body_id = egraph.add_expr(inner)
    assert egraph.free_vars(body_id) == frozenset({0, 2})
    from repro.sdqlite.ast import Sum

    root = egraph.add_expr(Sum(Sym("A"), inner))
    assert egraph.free_vars(root) == frozenset({0})
    closed = egraph.add_expr(expr)
    assert egraph.free_vars(closed) == frozenset()


def test_free_vars_refined_by_union():
    egraph = EGraph()
    uses = egraph.add_expr(Mul(Idx(0), Const(0)))     # mentions %0 ...
    zero = egraph.add_expr(Const(0))                  # ... but is equal to 0
    assert egraph.free_vars(uses) == frozenset({0})
    egraph.union(uses, zero)
    egraph.rebuild()
    assert egraph.free_vars(uses) == frozenset()


# ---------------------------------------------------------------------------
# pattern matching
# ---------------------------------------------------------------------------


def test_pattern_parse_and_variables():
    pattern = Pattern("?a * (?b + ?c)")
    assert pattern.variables == ["?a", "?b", "?c"]
    pattern = Pattern("sum(<k, v> in ?e) %0")
    assert pattern.variables == ["?e"]


def test_pattern_matching_simple():
    egraph = EGraph()
    root = egraph.add_expr(db("x * (y + z)"))
    matches = Pattern("?a * (?b + ?c)").search(egraph)
    assert len(matches) == 1
    identifier, subst = matches[0]
    assert egraph.find(identifier) == egraph.find(root)
    assert egraph.best_term(subst["?a"]) == Sym("x")
    assert egraph.best_term(subst["?c"]) == Sym("z")


def test_pattern_repeated_variable_requires_same_class():
    egraph = EGraph()
    egraph.add_expr(db("x * x"))
    egraph.add_expr(db("x * y"))
    matches = Pattern("?a * ?a").search(egraph)
    assert len(matches) == 1


def test_pattern_instantiation_adds_nodes():
    egraph = EGraph()
    egraph.add_expr(db("x + y"))
    (identifier, subst), = Pattern("?a + ?b").search(egraph)
    new_id = Pattern("?b + ?a").instantiate(egraph, subst)
    assert egraph.best_term(new_id) == Add(Sym("y"), Sym("x"))


def test_pattern_matches_binders_with_indices():
    egraph = EGraph()
    root = egraph.add_expr(db("sum(<i, v> in A) { i -> v }"))
    matches = Pattern("sum(<k, v> in ?e) { %1 -> %0 }").search(egraph)
    assert len(matches) == 1
    assert egraph.find(matches[0][0]) == egraph.find(root)


# ---------------------------------------------------------------------------
# rewriting + runner
# ---------------------------------------------------------------------------


def simple_rules():
    rules = []
    rules += bidirectional("mul-comm", "?a * ?b", "?b * ?a")
    rules += bidirectional("add-comm", "?a + ?b", "?b + ?a")
    rules.append(Rewrite.syntactic("mul-one", "?a * 1", "?a"))
    rules.append(Rewrite.syntactic("add-zero", "?a + 0", "?a"))
    rules += bidirectional("distribute", "?a * (?b + ?c)", "?a * ?b + ?a * ?c")
    return rules


def test_runner_saturates_and_proves_equalities():
    egraph = EGraph()
    left = egraph.add_expr(db("a * (b + c)"))
    right = egraph.add_expr(db("c * a + b * a"))
    report = Runner(egraph, simple_rules(), iter_limit=10).run()
    assert report.stop_reason in ("saturated", "iter_limit")
    assert egraph.equivalent(left, right)
    assert report.nodes > 0 and report.classes > 0 and report.memo > 0
    assert report.iterations >= 1
    assert len(report.per_iteration) == report.iterations


def test_runner_simplifies_with_extraction():
    egraph = EGraph()
    root = egraph.add_expr(db("(x * 1 + 0) * (1 * 1)"))
    Runner(egraph, simple_rules(), iter_limit=10).run()
    best = extract_smallest(egraph, root)
    assert best == Sym("x")


def test_conditional_rule_respects_free_vars():
    # Hoist ?e out of a sum only when it does not use the bound variables.
    def hoist(egraph, enode, term, subst):
        from repro.sdqlite.ast import Mul, Sum
        from repro.sdqlite.debruijn import shift

        factor = egraph.best_term(subst["?f"])
        rest = egraph.best_term(subst["?r"])
        return Mul(shift(factor, -2), Sum(egraph.best_term(subst["?e"]), rest))

    rule = Rewrite.make_dynamic(
        "hoist", "sum(<k, v> in ?e) ?f * ?r", hoist,
        var_independent_of("?f", 0, 1),
    )
    egraph = EGraph()
    # beta does not depend on the loop variables -> rule applies
    root = egraph.add_expr(db("sum(<i, v> in A) beta * v"))
    report = Runner(egraph, [rule], iter_limit=3).run()
    expected = egraph.contains_expr(db("beta * (sum(<i, v> in A) v)"))
    assert expected is not None and egraph.equivalent(root, expected)
    # v depends on the loop -> rule must not fire
    egraph2 = EGraph()
    root2 = egraph2.add_expr(db("sum(<i, v> in A) v * v"))
    Runner(egraph2, [rule], iter_limit=3).run()
    bad = egraph2.contains_expr(db("sum(<i, v> in A) v * v"))
    assert egraph2.num_classes == 4  # nothing new was added


def test_runner_node_limit_stops():
    # With a very small node budget the runner stops on the node limit
    # instead of saturating.
    egraph = EGraph()
    egraph.add_expr(db("a * (b + c) * (d + e)"))
    report = Runner(egraph, simple_rules(), iter_limit=50, node_limit=12).run()
    assert report.stop_reason == "node_limit"
    assert report.nodes >= 12


def test_runner_iteration_limit_stops():
    egraph = EGraph()
    egraph.add_expr(db("a * (b + c) * (d + e) * (f + g)"))
    report = Runner(egraph, simple_rules(), iter_limit=1, node_limit=10_000_000).run()
    assert report.stop_reason == "iter_limit"
    assert report.iterations == 1


def test_extractor_with_custom_cost():
    egraph = EGraph()
    root = egraph.add_expr(db("a * (b + c)"))
    Runner(egraph, simple_rules(), iter_limit=6).run()

    def prefer_factored(enode, child_costs):
        # Make '+' of two products expensive so the factored form wins.
        penalty = 10.0 if enode.head == "add" else 0.0
        return 1.0 + penalty + sum(child_costs)

    extractor = Extractor(egraph, prefer_factored)
    best = extractor.extract(root)
    assert isinstance(best, Mul)
    assert extractor.cost_of(root) < 20


def test_extract_raises_on_unknown_class():
    egraph = EGraph()
    egraph.add_expr(db("x"))
    with pytest.raises((KeyError, IndexError)):
        egraph[99]


# ---------------------------------------------------------------------------
# maintained counters, operator index, dirty tracking
# ---------------------------------------------------------------------------


def _recount(egraph):
    classes = list(egraph.classes())
    return sum(len(c.nodes) for c in classes), len(classes)


def test_counters_match_recount_through_unions_and_rebuilds():
    egraph = EGraph()
    a = egraph.add_expr(db("(a + b) * (a + b)"))
    b = egraph.add_expr(db("c * 1 + a * b"))
    assert (egraph.num_nodes, egraph.num_classes) == _recount(egraph)
    egraph.union(a, b)
    egraph.rebuild()
    assert (egraph.num_nodes, egraph.num_classes) == _recount(egraph)
    egraph.union(egraph.add_expr(db("a")), egraph.add_expr(db("b")))
    egraph.rebuild()  # congruence merges a+b nodes and dedups
    assert (egraph.num_nodes, egraph.num_classes) == _recount(egraph)
    egraph.sanity_check()


def test_operator_index_finds_label_classes():
    egraph = EGraph()
    egraph.add_expr(db("x * (y + z)"))
    mul_classes = egraph.classes_with_label(("mul",))
    add_classes = egraph.classes_with_label(("add",))
    assert len(mul_classes) == 1 and len(add_classes) == 1
    assert egraph.classes_with_label(("sub",)) == []
    # After a union the index entry resolves to the surviving class.
    a = egraph.add_expr(db("a * b"))
    other = egraph.add_expr(db("q"))
    egraph.union(a, other)
    egraph.rebuild()
    resolved = egraph.classes_with_label(("mul",))
    assert egraph.find(a) in resolved
    egraph.sanity_check()


def test_take_dirty_reports_new_and_unioned_classes():
    egraph = EGraph()
    root = egraph.add_expr(db("x + y"))
    dirty = egraph.take_dirty()
    assert egraph.find(root) in dirty
    assert egraph.take_dirty() == []  # drained
    a = egraph.add_expr(db("x"))
    egraph.take_dirty()
    b = egraph.add_expr(db("y"))
    egraph.union(a, b)
    dirty = egraph.take_dirty()
    assert egraph.find(a) in dirty


def test_ancestors_closure_reaches_match_roots():
    egraph = EGraph()
    root = egraph.add_expr(db("(x + y) * z"))
    inner = egraph.add_expr(db("x"))
    closure = egraph.ancestors_closure([inner])
    # x -> x + y -> (x + y) * z
    assert egraph.find(root) in closure
    assert len(closure) >= 3


# ---------------------------------------------------------------------------
# schedulers and incremental search
# ---------------------------------------------------------------------------


def test_backoff_scheduler_bans_exploding_rule():
    from repro.egraph import BackoffScheduler

    rules = simple_rules()
    scheduler = BackoffScheduler(rules, match_limit=10, ban_length=2)
    assert scheduler.allow(0, 1)
    assert scheduler.record(0, 1, 11) is True          # exploded -> banned
    assert not scheduler.allow(0, 2)
    assert not scheduler.allow(0, 3)
    assert scheduler.allow(0, 4)                       # ban expired
    assert scheduler.record(0, 4, 15) is False         # threshold doubled to 20


def test_banned_iteration_does_not_report_saturated():
    # One explosive rule; with a tiny budget it gets banned immediately, and
    # the iteration it sits out must not count as saturation.
    egraph = EGraph()
    egraph.add_expr(db("a * (b + c) * (d + e)"))
    rules = simple_rules()
    report = Runner(egraph, rules, iter_limit=3, match_limit_per_rule=2,
                    scheduler="backoff", ban_length=5).run()
    banned_iters = [it for it in report.per_iteration if it.banned]
    assert banned_iters, "expected at least one iteration with banned rules"
    for stats in banned_iters:
        assert report.stop_reason != "saturated" or stats.index != report.iterations


def test_backoff_rebans_persistently_explosive_rule():
    # After a ban the threshold doubles; the runner's collection cap must
    # follow it so a rule that keeps exploding keeps getting (longer) bans.
    from repro.egraph import Rewrite

    egraph = EGraph()
    egraph.add_expr(db("a * (b + c) * (d + e) * (f + g) * (h + i)"))
    rules = simple_rules()
    report = Runner(egraph, rules, iter_limit=30, node_limit=100_000,
                    match_limit_per_rule=2, scheduler="backoff", ban_length=1).run()
    assert max(stats.bans for stats in report.rule_stats.values()) >= 2


def test_runner_rejects_unknown_scheduler_name():
    egraph = EGraph()
    egraph.add_expr(db("a * b"))
    with pytest.raises(ValueError):
        Runner(egraph, simple_rules(), scheduler="back-off")


def test_indexed_false_scans_without_probing_index(monkeypatch):
    # The naive configuration must not benefit from the operator index.
    egraph = EGraph()
    left = egraph.add_expr(db("a * (b + c)"))
    right = egraph.add_expr(db("c * a + b * a"))
    probes = []
    original = EGraph.classes_with_label

    def counting(self, label):
        probes.append(label)
        return original(self, label)

    monkeypatch.setattr(EGraph, "classes_with_label", counting)
    Runner(egraph, simple_rules(), iter_limit=10, scheduler="simple",
           indexed=False, incremental=False).run()
    assert probes == []
    assert egraph.equivalent(left, right)


def test_incremental_engine_matches_naive_equalities():
    # The incremental/indexed engine must prove the same equalities as the
    # naive full rescan when nothing truncates.
    for flags in ({"indexed": True, "incremental": True},
                  {"indexed": True, "incremental": False},
                  {"indexed": False, "incremental": True}):
        egraph = EGraph()
        left = egraph.add_expr(db("a * (b + c)"))
        right = egraph.add_expr(db("c * a + b * a"))
        report = Runner(egraph, simple_rules(), iter_limit=10,
                        scheduler="simple", **flags).run()
        assert egraph.equivalent(left, right), flags
        egraph.sanity_check()


def test_runner_reports_rule_and_iteration_timings():
    egraph = EGraph()
    egraph.add_expr(db("a * (b + c)"))
    report = Runner(egraph, simple_rules(), iter_limit=4).run()
    assert set(report.rule_stats) == {rule.name for rule in simple_rules()}
    assert any(stats.matches > 0 for stats in report.rule_stats.values())
    total_rule_ms = sum(s.search_ms + s.apply_ms for s in report.rule_stats.values())
    assert total_rule_ms >= 0.0
    for iteration in report.per_iteration:
        assert iteration.search_ms >= 0.0 and iteration.apply_ms >= 0.0
        assert iteration.rebuild_ms >= 0.0


def test_match_limit_stops_collection_early():
    egraph = EGraph()
    egraph.add_expr(db("a * (b + c) * (d + e) * (f + g)"))
    report = Runner(egraph, simple_rules(), iter_limit=2,
                    match_limit_per_rule=3, scheduler="simple").run()
    # Collection stops at the budget (+1 sentinel for explosion detection),
    # so no iteration reports more matches than rules x (limit + 1).
    for iteration in report.per_iteration:
        assert iteration.matches <= len(simple_rules()) * 4


def test_per_rule_match_limit_overrides_global():
    from repro.egraph import Rewrite

    rule = Rewrite.syntactic("mul-comm-budget", "?a * ?b", "?b * ?a")
    rule.match_limit = 1
    egraph = EGraph()
    egraph.add_expr(db("a * b + c * d"))
    report = Runner(egraph, [rule], iter_limit=1, match_limit_per_rule=100).run()
    # Two mul classes match, but the per-rule budget of 1 caps application
    # (collection stops at budget + 1, the explosion sentinel).
    assert report.per_iteration[0].applied == 1
    assert report.per_iteration[0].matches <= 2


# ---------------------------------------------------------------------------
# pattern parsing regressions (token-initial ? and % markers only)
# ---------------------------------------------------------------------------


def test_parse_pattern_rejects_mid_token_markers():
    from repro.sdqlite.errors import OptimizationError, ParseError

    # Before the token-initial fix these were silently mangled into symbols
    # like "a__pvar_b"; now the un-encoded marker reaches the tokenizer.
    for source in ("a?b + 1", "?a + b_50%", "x % 2"):
        with pytest.raises(ParseError):
            parse_pattern(source)
    with pytest.raises(OptimizationError):
        parse_pattern("__pvar_x + 1")


def test_parse_pattern_accepts_adjacent_punctuation():
    expr = parse_pattern("(?lo:?hi)(?k)")
    pattern = Pattern(expr)
    assert pattern.variables == ["?hi", "?k", "?lo"]
    expr = parse_pattern("{ ?k -> ?v }(?k)")
    assert Pattern(expr).variables == ["?k", "?v"]


def test_search_iter_restricts_to_candidates():
    egraph = EGraph()
    first = egraph.add_expr(db("x * y"))
    second = egraph.add_expr(db("a * b"))
    pattern = Pattern("?a * ?b")
    all_matches = list(pattern.search_iter(egraph))
    assert {egraph.find(i) for i, _ in all_matches} == \
        {egraph.find(first), egraph.find(second)}
    only_first = list(pattern.search_iter(egraph, [first]))
    assert {egraph.find(i) for i, _ in only_first} == {egraph.find(first)}
