"""The catalog: registered tensors, their formats, statistics and globals.

The catalog plays the role of the "Data Admin" side of Fig. 2 in the paper:
it holds, for every logical tensor, the chosen storage format (and therefore
its physical symbols and Tensor Storage Mapping) plus the data statistics the
cost-based optimizer consumes.

The catalog is mutable — tensors can be registered (:meth:`Catalog.add`),
dropped (:meth:`Catalog.drop`) and re-stored in a different format
(:meth:`Catalog.replace`), and scalars can be rebound
(:meth:`Catalog.set_scalar`).  Every mutation bumps :attr:`Catalog.version`;
mutations that change the *schema* (the set of symbols or the storage
formats behind them, as opposed to merely the value of an existing scalar)
also bump :attr:`Catalog.schema_version`.  Sessions and prepared statements
(:mod:`repro.session`) key their memoized statistics, environments and
lowered plans on these epochs: a ``version`` bump invalidates bound values,
a ``schema_version`` bump additionally invalidates optimized plans.

The catalog is also safe to share between threads — one catalog, many
concurrent clients is exactly the serving regime (:mod:`repro.serving`).
Every mutation applies its data change *and* its epoch bump as one atomic
step under an internal lock, so no reader can ever pair new data with an
old epoch (or vice versa), and :meth:`Catalog.snapshot` hands out an
immutable point-in-time view for snapshot-isolated reads: an in-flight
execution bound to a snapshot never observes a half-applied
:meth:`replace`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..sdqlite.ast import Expr
from ..sdqlite.errors import StorageError
from .formats import StorageFormat
from .physical import KIND_SCALAR


@dataclass(eq=False)
class Catalog:
    """A collection of named tensors stored in explicit formats."""

    tensors: dict[str, StorageFormat] = field(default_factory=dict)
    scalars: dict[str, float] = field(default_factory=dict)
    #: Bumped on every mutation (including scalar re-binds).
    version: int = 0
    #: Bumped only when the symbol set / storage formats change.
    schema_version: int = 0
    _lock: threading.RLock = field(default_factory=threading.RLock, repr=False)

    def _bump(self, *, schema: bool) -> None:
        """Advance the epochs.  Callers hold :attr:`_lock`; the data change
        they describe happened in the same locked region, so readers always
        see mutation + bump as one step (see the pausing-catalog test in
        ``tests/test_serving.py``)."""
        self.version += 1
        if schema:
            self.schema_version += 1

    def _writable(self) -> None:
        """Hook for read-only views; :class:`CatalogSnapshot` overrides it."""

    # -- registration ---------------------------------------------------------

    def add(self, fmt: StorageFormat) -> "Catalog":
        """Register a tensor; its logical name must be unique in the catalog."""
        self._writable()
        with self._lock:
            if fmt.name in self.tensors:
                raise StorageError(f"tensor {fmt.name!r} is already registered")
            if fmt.name in self.scalars:
                raise StorageError(f"{fmt.name!r} is already registered as a scalar")
            self.tensors[fmt.name] = fmt
            self._bump(schema=True)
        return self

    def add_scalar(self, name: str, value: float) -> "Catalog":
        """Register a global scalar (e.g. the β of the BATAX kernel)."""
        self._writable()
        with self._lock:
            if name in self.tensors:
                raise StorageError(f"{name!r} is already registered as a tensor")
            schema = name not in self.scalars
            self.scalars[name] = value
            self._bump(schema=schema)
        return self

    #: Re-binding an existing scalar is a value-only mutation (no schema bump),
    #: so prepared statements only need to refresh their environment.
    set_scalar = add_scalar

    def drop(self, name: str) -> "Catalog":
        """Unregister a tensor or scalar; its physical symbols become free again."""
        self._writable()
        with self._lock:
            if name in self.tensors:
                del self.tensors[name]
            elif name in self.scalars:
                del self.scalars[name]
            else:
                raise StorageError(f"cannot drop {name!r}: not registered")
            self._bump(schema=True)
        return self

    def replace(self, fmt: StorageFormat) -> "Catalog":
        """Swap an already-registered tensor's storage format for ``fmt``.

        The logical name must already be registered (use :meth:`add` for new
        tensors); the old format's physical symbols are dropped with it, so
        re-storing a tensor never leaves stale symbol collisions behind.

        A swap that keeps the *schema* — same format class, same shape, same
        physical symbol layout and storage mapping — is a value-only
        mutation: only :attr:`version` bumps, so prepared statements refresh
        their environment without re-optimizing and shared plans survive.
        Changing the format class or shape bumps :attr:`schema_version` as
        before.
        """
        self._writable()
        with self._lock:
            old = self.tensors.get(fmt.name)
            if old is None:
                raise StorageError(
                    f"cannot replace {fmt.name!r}: not registered (use add() first)")
            schema = not (type(old) is type(fmt)
                          and tuple(old.shape) == tuple(fmt.shape)
                          and old.physical_kinds() == fmt.physical_kinds()
                          and old.mapping_source() == fmt.mapping_source())
            self.tensors[fmt.name] = fmt
            self._bump(schema=schema)
        return self

    def update(self, name: str, coords, values) -> "Catalog":
        """Apply a sparse point-update: add ``values`` at ``coords`` to a tensor.

        ``coords`` is an ``(n, rank)`` integer array (or nested sequence) and
        ``values`` the matching ``n`` additive deltas — existing entries are
        incremented, absent ones inserted, entries cancelling to zero
        dropped, all in the tensor's current storage format (see
        :func:`repro.storage.convert.apply_delta`).  This is a *value-only*
        mutation: the format class, shape and physical symbol layout are
        unchanged, so only :attr:`version` bumps and prepared plans —
        including the serving layer's shared plans — survive.  This is the
        fine-grained write API incremental view maintenance builds on
        (:mod:`repro.ivm`).
        """
        from .convert import apply_delta

        self._writable()
        with self._lock:
            fmt = self.tensors.get(name)
            if fmt is None:
                raise StorageError(f"cannot update {name!r}: not a registered tensor")
            self.tensors[name] = apply_delta(fmt, coords, values)
            self._bump(schema=False)
        return self

    # -- snapshot isolation ----------------------------------------------------

    def snapshot(self) -> "CatalogSnapshot":
        """An immutable point-in-time view of this catalog.

        The snapshot pairs shallow copies of the tensor / scalar tables with
        the epochs they were taken under, as one atomic read — so a request
        executing against a snapshot can never observe a half-applied
        :meth:`replace` / :meth:`drop`, and comparing
        ``snapshot.schema_version`` against the live catalog detects
        staleness exactly.  Stored formats are never mutated in place (every
        re-store swaps the whole :class:`~repro.storage.formats.StorageFormat`
        object), so sharing them between the snapshot and the live catalog is
        sound.  Mutating a snapshot raises :class:`StorageError`.
        """
        with self._lock:
            return CatalogSnapshot(tensors=dict(self.tensors),
                                   scalars=dict(self.scalars),
                                   version=self.version,
                                   schema_version=self.schema_version)

    def epochs(self) -> tuple[int, int]:
        """``(version, schema_version)`` read atomically."""
        with self._lock:
            return self.version, self.schema_version

    def __contains__(self, name: str) -> bool:
        return name in self.tensors or name in self.scalars

    def __getitem__(self, name: str) -> StorageFormat:
        return self.tensors[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self.tensors)

    # -- views consumed by the optimizer / execution engine --------------------

    def globals(self) -> dict[str, Any]:
        """All physical symbols (arrays, hash-maps, tries, sizes) plus scalars."""
        with self._lock:
            env: dict[str, Any] = dict(self.scalars)
            for fmt in self.tensors.values():
                for symbol, value in fmt.physical().items():
                    if symbol in env:
                        raise StorageError(f"physical symbol {symbol!r} declared twice")
                    env[symbol] = value
            return env

    def mappings(self) -> dict[str, Expr]:
        """Tensor Storage Mappings (named-form ASTs) keyed by tensor name."""
        with self._lock:
            return {name: fmt.mapping() for name, fmt in self.tensors.items()}

    def mapping_sources(self) -> dict[str, str]:
        """Tensor Storage Mappings as SDQLite source text."""
        with self._lock:
            return {name: fmt.mapping_source() for name, fmt in self.tensors.items()}

    def physical_kinds(self) -> dict[str, str]:
        """Collection kind per physical symbol (array / hash / trie / scalar)."""
        with self._lock:
            kinds: dict[str, str] = {name: KIND_SCALAR for name in self.scalars}
            for fmt in self.tensors.values():
                kinds.update(fmt.physical_kinds())
            return kinds

    def tensor_profiles(self) -> dict[str, tuple]:
        """Nested cardinality profile per logical tensor."""
        with self._lock:
            return {name: fmt.profile() for name, fmt in self.tensors.items()}

    def segment_profiles(self) -> dict[str, float]:
        """Average segment length per segmented physical array."""
        with self._lock:
            profiles: dict[str, float] = {}
            for fmt in self.tensors.values():
                profiles.update(fmt.segment_profiles())
            return profiles

    def scalar_values(self) -> dict[str, float]:
        """Integer/real valued globals (dimension sizes, nnz counters, scalars)."""
        with self._lock:
            values: dict[str, float] = dict(self.scalars)
            for fmt in self.tensors.values():
                for symbol, value in fmt.physical().items():
                    if isinstance(value, (int, float)):
                        values[symbol] = value
            return values

    def declarations(self) -> str:
        """The full DDL (CREATE statements) for everything in the catalog."""
        with self._lock:
            blocks = [fmt.declarations() for fmt in self.tensors.values()]
            for name in self.scalars:
                blocks.append(f"CREATE real SCALAR {name};")
            return "\n\n".join(blocks)

    def describe(self) -> str:
        """One line per tensor: name, format, shape, nnz, density."""
        with self._lock:
            lines = []
            for name, fmt in sorted(self.tensors.items()):
                dims = "x".join(str(s) for s in fmt.shape)
                lines.append(
                    f"{name}: {fmt.format_name} {dims} nnz={fmt.nnz} density={fmt.density:.2e}"
                )
            return "\n".join(lines)


class CatalogSnapshot(Catalog):
    """An immutable point-in-time view of a :class:`Catalog`.

    Produced by :meth:`Catalog.snapshot`.  Behaves like a catalog for every
    read (``globals()`` / ``mappings()`` / statistics derivation / epoch
    comparison) but rejects all mutation, so code holding a snapshot can be
    audited to be read-only.  Requests in the serving layer
    (:mod:`repro.serving`) execute against snapshots exclusively.
    """

    def _writable(self) -> None:
        raise StorageError(
            "catalog snapshots are read-only; mutate the live catalog instead")

    def snapshot(self) -> "CatalogSnapshot":
        """A snapshot of a snapshot is itself (it can never change)."""
        return self
