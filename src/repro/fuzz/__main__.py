"""Command-line driver for differential fuzz campaigns.

Examples::

    # a quick local smoke run
    PYTHONPATH=src python -m repro.fuzz --seed 1 --cases 200

    # a long overnight campaign, shrinking failures into fuzz-failures/
    PYTHONPATH=src python -m repro.fuzz --seed 1 --cases 100000 \\
        --out fuzz-failures --legacy-every 4

Exits non-zero when any divergence is found; shrunk repro files written to
``--out`` are ready to be copied into ``tests/corpus/`` as permanent
regression tests once the underlying bug is fixed.

``--concurrent`` switches to the serial-equivalence campaign: each case is
executed by concurrent reader threads through ``repro.serving.Server`` while
a writer applies random catalog updates, and every observed result must
match the program evaluated serially at some update prefix::

    PYTHONPATH=src python -m repro.fuzz --concurrent --seed 1 --cases 40

``--ivm`` switches to the view-maintenance campaign: each case's program is
registered as materialized views while random sparse point-updates flow
through ``Server.update``, and every maintained value must equal full
re-execution at that state::

    PYTHONPATH=src python -m repro.fuzz --ivm --seed 1 --cases 200

``--adaptive`` switches to the feedback-loop campaign: each case's prepared
statements execute repeatedly with profiling on every run and an aggressive
re-optimize threshold while sparse updates drift the data, and every result
— before and after each transparent re-preparation — must equal the serial
reference at that state::

    PYTHONPATH=src python -m repro.fuzz --adaptive --seed 1 --cases 200
"""

from __future__ import annotations

import argparse
import sys

from .oracle import adaptive_campaign, campaign, concurrent_campaign, ivm_campaign


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Differential fuzzing: random SDQLite programs x formats "
                    "x backends x optimizer engines.")
    parser.add_argument("--seed", type=int, default=1,
                        help="master seed; every case derives from it (default 1)")
    parser.add_argument("--cases", type=int, default=200,
                        help="number of generated cases (default 200)")
    parser.add_argument("--fuel", type=int, default=14,
                        help="program-size budget per case (default 14)")
    parser.add_argument("--legacy-every", type=int, default=4, metavar="K",
                        help="also run the legacy saturation engine every "
                             "K-th case; 0 disables (default 4)")
    parser.add_argument("--time-budget", type=float, default=None, metavar="SECONDS",
                        help="stop cleanly after this much wall-clock time")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="write shrunk failures into DIR as corpus files")
    parser.add_argument("--no-shrink", action="store_true",
                        help="report raw failures without delta-debugging them")
    parser.add_argument("--max-failures", type=int, default=5,
                        help="stop after this many divergences (default 5)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-50-case progress lines")
    parser.add_argument("--concurrent", action="store_true",
                        help="serial-equivalence mode: race executions against "
                             "catalog updates through the serving layer")
    parser.add_argument("--ivm", action="store_true",
                        help="view-maintenance mode: maintained views vs. full "
                             "re-execution after random sparse updates")
    parser.add_argument("--adaptive", action="store_true",
                        help="feedback-loop mode: repeated profiled executions "
                             "with mid-campaign re-optimization vs. the serial "
                             "reference after random sparse updates")
    parser.add_argument("--readers", type=int, default=3,
                        help="concurrent mode: reader threads per case (default 3)")
    parser.add_argument("--updates", type=int, default=None,
                        help="concurrent/ivm/adaptive mode: updates per case "
                             "(default 5 concurrent, 4 ivm, 3 adaptive)")
    parser.add_argument("--executions", type=int, default=None,
                        help="concurrent mode: executions per reader; adaptive "
                             "mode: executions per statement per state "
                             "(default 4 concurrent, 3 adaptive)")
    args = parser.parse_args(argv)
    if sum((args.concurrent, args.ivm, args.adaptive)) > 1:
        parser.error("--concurrent, --ivm and --adaptive are mutually exclusive")

    if args.adaptive:
        report = adaptive_campaign(
            args.seed, args.cases,
            updates_per_case=3 if args.updates is None else args.updates,
            executions=3 if args.executions is None else args.executions,
            shrink=not args.no_shrink,
            out_dir=args.out,
            time_budget=args.time_budget,
            max_failures=args.max_failures,
            progress=not args.quiet,
            case_options={"fuel": args.fuel},
        )
    elif args.ivm:
        report = ivm_campaign(
            args.seed, args.cases,
            updates_per_case=4 if args.updates is None else args.updates,
            shrink=not args.no_shrink,
            out_dir=args.out,
            time_budget=args.time_budget,
            max_failures=args.max_failures,
            progress=not args.quiet,
            case_options={"fuel": args.fuel},
        )
    elif args.concurrent:
        report = concurrent_campaign(
            args.seed, args.cases,
            readers=args.readers,
            executions=4 if args.executions is None else args.executions,
            updates_per_case=5 if args.updates is None else args.updates,
            out_dir=args.out,
            time_budget=args.time_budget,
            max_failures=args.max_failures,
            progress=not args.quiet,
            case_options={"fuel": args.fuel},
        )
    else:
        report = campaign(
            args.seed, args.cases,
            legacy_every=args.legacy_every,
            shrink=not args.no_shrink,
            out_dir=args.out,
            time_budget=args.time_budget,
            max_failures=args.max_failures,
            progress=not args.quiet,
            case_options={"fuel": args.fuel},
        )
    print(report.summary())
    for divergence in report.divergences:
        print("\n--- divergence " + "-" * 50)
        print(divergence.describe())
    for path in report.corpus_paths:
        print(f"shrunk repro written to {path}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
