"""Figure 8 — runtime versus density, sparse versus dense storage.

For BATAX, ΣMMM and MMM, synthetic square matrices of varying density are
stored both sparsely (the Table 3 formats) and densely, and run through
STOREL and the Taco-like baseline, alongside SciPy and NumPy.

Expected shape (paper): the sparse storage wins at low density, the dense
storage catches up as the density approaches 1; STOREL beats the other
systems on BATAX / ΣMMM at every density thanks to factorization, while for
plain MMM the BLAS-backed baselines win at high density.
"""

import pytest

from _config import BACKENDS, REPEATS, print_report
from repro.baselines import NotSupportedError, NumpySystem, ScipySystem, StorelSystem, TacoLikeSystem
from repro.data.synthetic import density_sweep
from repro.kernels import KERNELS
from repro.workloads.experiments import fig8_measurements, synthetic_catalog
from repro.workloads.reporting import format_table, pivot_measurements

#: Reduced density grid (the paper sweeps 2^-11 .. 1); raise for a fuller sweep.
DENSITIES = [2.0 ** -9, 2.0 ** -6, 2.0 ** -3]
MATRIX_ROWS = 96


@pytest.mark.parametrize("kernel_name", ["BATAX", "SUMMM", "MMM"])
def test_fig8_report(benchmark, kernel_name):
    def run():
        return fig8_measurements(kernel_name, DENSITIES, rows=MATRIX_ROWS, repeats=REPEATS)

    measurements = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        pivot_measurements(measurements),
        title=f"Fig. 8 — {kernel_name}: run time (ms) vs density (sparse vs dense storage)")
    print_report(table)
    ok = [m for m in measurements if m.status == "ok"]
    assert ok and all(m.correct for m in ok)


@pytest.mark.parametrize("density", DENSITIES)
@pytest.mark.parametrize("storage", ["sparse", "dense"])
def test_fig8_batax_storel_per_density(benchmark, density, storage):
    """STOREL on BATAX at one density / storage point (micro benchmark)."""
    catalog = synthetic_catalog("BATAX", density, rows=MATRIX_ROWS, cols=MATRIX_ROWS,
                                storage=storage)
    run = StorelSystem().prepare(KERNELS["BATAX"], catalog)
    benchmark.group = f"fig8-BATAX-{storage}"
    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.parametrize("backend", BACKENDS)
def test_fig8_batax_per_backend(benchmark, backend):
    """STOREL's execution backends on BATAX at the densest sweep point."""
    catalog = synthetic_catalog("BATAX", DENSITIES[-1], rows=MATRIX_ROWS,
                                cols=MATRIX_ROWS, storage="sparse")
    run = StorelSystem(backend=backend).prepare(KERNELS["BATAX"], catalog)
    benchmark.group = "fig8-BATAX-backends"
    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.parametrize("system_factory", [ScipySystem, NumpySystem, TacoLikeSystem])
def test_fig8_mmm_reference_systems(benchmark, system_factory):
    """The MMM crossover point: optimized primitives vs generated loops at density 2^-3."""
    catalog = synthetic_catalog("MMM", 2.0 ** -3, rows=MATRIX_ROWS, cols=MATRIX_ROWS)
    system = system_factory()
    try:
        run = system.prepare(KERNELS["MMM"], catalog)
    except NotSupportedError as exc:
        pytest.skip(str(exc))
    benchmark.group = "fig8-MMM-density-2^-3"
    benchmark.pedantic(run, rounds=3, iterations=1)
