"""Common interface of the systems compared in the evaluation (Sec. 6).

Every system — STOREL itself plus the baselines — implements
:class:`System`: given a kernel and a catalog of stored tensors it returns a
no-argument callable that computes the kernel and returns a dense NumPy
result (or a scalar).  The benchmark harness times that callable, excluding
data loading and plan preparation, exactly like the paper measures only
execution time.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

import numpy as np

from ..kernels.programs import Kernel
from ..storage.catalog import Catalog


class NotSupportedError(Exception):
    """Raised when a system cannot run a kernel (e.g. no sparse rank-3 support)."""


RunCallable = Callable[[], "np.ndarray | float"]


class System(ABC):
    """A tensor-processing system under benchmark."""

    name: str = "abstract"

    @abstractmethod
    def prepare(self, kernel: Kernel, catalog: Catalog) -> RunCallable:
        """Return a callable that executes ``kernel`` over ``catalog``'s tensors.

        Preparation (plan optimization, compilation, format conversion) happens
        here and is *not* part of the timed region, mirroring the paper's
        methodology.  Raises :class:`NotSupportedError` when the system cannot
        express the kernel.
        """

    def run_once(self, kernel: Kernel, catalog: Catalog):
        """Convenience: prepare and execute immediately."""
        return self.prepare(kernel, catalog)()


def output_shape(kernel: Kernel, catalog: Catalog) -> tuple[int, ...]:
    """The dense shape of a kernel's output, derived from the input tensors."""
    shapes = {name: catalog[name].shape for name in kernel.tensor_names if name in catalog.tensors}
    name = kernel.name.upper()
    if name == "MMM":
        return (shapes["A"][0], shapes["B"][1])
    if name == "SUMMM":
        return ()
    if name.startswith("BATAX"):
        return (shapes["A"][1],)
    if name == "TTM":
        return (shapes["A"][0], shapes["A"][1], shapes["B"][0])
    if name == "MTTKRP":
        return (shapes["A"][0], shapes["B"][1])
    raise KeyError(f"unknown kernel {kernel.name!r}")


def dense_inputs(kernel: Kernel, catalog: Catalog) -> dict[str, np.ndarray]:
    """Densified inputs for oracle computations (NumPy baseline, correctness checks)."""
    return {name: catalog[name].to_dense() for name in kernel.tensor_names
            if name in catalog.tensors}


def reference_result(kernel: Kernel, catalog: Catalog) -> "np.ndarray | float":
    """A NumPy oracle for every kernel (used by tests to validate all systems)."""
    dense = dense_inputs(kernel, catalog)
    beta = catalog.scalars.get("beta", 1.0)
    name = kernel.name.upper()
    if name == "MMM":
        return dense["A"] @ dense["B"]
    if name == "SUMMM":
        return float((dense["A"] @ dense["B"]).sum())
    if name.startswith("BATAX"):
        x = dense["X"]
        return beta * (dense["A"].T @ (dense["A"] @ x))
    if name == "TTM":
        return np.einsum("ijl,kl->ijk", dense["A"], dense["B"])
    if name == "MTTKRP":
        return np.einsum("ikl,kj,lj->ij", dense["A"], dense["B"], dense["C"])
    raise KeyError(f"unknown kernel {kernel.name!r}")
