"""Flat typed columnar buffers for the ``typed`` execution backend.

The ``typed`` backend (:mod:`repro.execution.typed_backend`) evaluates whole
plans over contiguous NumPy arrays.  This module provides the data layer it
runs on:

* :class:`BufferLevels` — a CSF-style *levelized* view of an integer-keyed
  nested dictionary: one sorted key array per nesting level, segment-pointer
  arrays linking a parent entry to its children, and one float64 leaf value
  array.  Within every parent segment the keys are sorted, and entries are
  globally ordered by (parent id, key), so per-segment binary search
  vectorizes over thousands of segments at once via a composite-key
  ``searchsorted``.
* :class:`BufferDict` — a lazy dictionary view over a :class:`BufferLevels`
  node.  It satisfies the generic ``items()`` / ``get()`` protocol of
  :mod:`repro.sdqlite.values`, so typed results flow through ``v_add``,
  ``to_plain`` and the fuzz oracle unchanged, while the ``result_to_*``
  helpers recognise it and scatter straight into a dense array.
* :func:`to_buffer_levels` — conversion of any runtime collection (nested
  dicts, tries, semiring dicts, 1-D arrays, ranges) into a
  :class:`LevelView`, with ``None`` for shapes the typed representation
  cannot hold (tuple or float keys, ragged depth).
* The kernel twins :func:`expand_ranges` / :func:`parent_sum` /
  :func:`lookup_sorted`: when ``numba`` is importable they are JIT-compiled
  ``@njit`` loops, otherwise semantically identical NumPy-vectorized
  implementations.  Both modes produce bit-identical results; the backend is
  always available and never requires numba.
"""

from __future__ import annotations

from typing import Any, NamedTuple

import numpy as np

from ..sdqlite.values import integral_index, is_dictlike, is_scalar, iter_items

__all__ = [
    "HAVE_NUMBA",
    "BufferLevels",
    "BufferDict",
    "LevelView",
    "to_buffer_levels",
    "expand_ranges",
    "parent_sum",
    "lookup_sorted",
    "group_sum_sorted",
]


# ---------------------------------------------------------------------------
# Kernel twins: numba @njit when available, NumPy-vectorized otherwise
# ---------------------------------------------------------------------------

try:  # pragma: no cover - exercised on the optional numba CI leg
    from numba import njit as _njit

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the default environment
    HAVE_NUMBA = False


def _np_expand_ranges(lo: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(lo[i], lo[i] + counts[i])`` for every lane ``i``."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    starts = np.cumsum(counts) - counts
    return (np.arange(total, dtype=np.int64)
            - np.repeat(starts, counts) + np.repeat(lo, counts))


def _np_parent_sum(parent: np.ndarray, weights: np.ndarray, size: int) -> np.ndarray:
    """Sum ``weights`` per parent lane: ``out[p] = Σ weights[parent == p]``."""
    if parent.size == 0:
        return np.zeros(size, dtype=np.float64)
    return np.bincount(parent, weights=weights, minlength=size)[:size]


def _np_lookup_sorted(haystack: np.ndarray, queries: np.ndarray):
    """Binary-search every query in an ascending array: ``(positions, found)``."""
    if haystack.size == 0:
        return (np.zeros(queries.shape[0], dtype=np.int64),
                np.zeros(queries.shape[0], dtype=bool))
    pos = np.searchsorted(haystack, queries)
    clipped = np.minimum(pos, haystack.size - 1)
    return clipped, haystack[clipped] == queries


if HAVE_NUMBA:  # pragma: no cover - exercised on the optional numba CI leg

    @_njit(cache=False)
    def _nb_expand_ranges(lo, counts, out):
        k = 0
        for i in range(lo.shape[0]):
            for j in range(counts[i]):
                out[k] = lo[i] + j
                k += 1

    def expand_ranges(lo: np.ndarray, counts: np.ndarray) -> np.ndarray:
        out = np.empty(int(counts.sum()), dtype=np.int64)
        _nb_expand_ranges(np.ascontiguousarray(lo, dtype=np.int64),
                          np.ascontiguousarray(counts, dtype=np.int64), out)
        return out

    @_njit(cache=False)
    def _nb_parent_sum(parent, weights, out):
        for i in range(parent.shape[0]):
            out[parent[i]] += weights[i]

    def parent_sum(parent: np.ndarray, weights: np.ndarray, size: int) -> np.ndarray:
        out = np.zeros(size, dtype=np.float64)
        _nb_parent_sum(np.ascontiguousarray(parent, dtype=np.int64),
                       np.ascontiguousarray(weights, dtype=np.float64), out)
        return out

    @_njit(cache=False)
    def _nb_lookup_sorted(haystack, queries, pos, found):
        n = haystack.shape[0]
        for i in range(queries.shape[0]):
            q = queries[i]
            lo, hi = 0, n
            while lo < hi:
                mid = (lo + hi) // 2
                if haystack[mid] < q:
                    lo = mid + 1
                else:
                    hi = mid
            p = lo if lo < n else n - 1
            pos[i] = p
            found[i] = haystack[p] == q

    def lookup_sorted(haystack: np.ndarray, queries: np.ndarray):
        if haystack.size == 0:
            return (np.zeros(queries.shape[0], dtype=np.int64),
                    np.zeros(queries.shape[0], dtype=bool))
        pos = np.empty(queries.shape[0], dtype=np.int64)
        found = np.empty(queries.shape[0], dtype=bool)
        _nb_lookup_sorted(np.ascontiguousarray(haystack, dtype=np.int64),
                          np.ascontiguousarray(queries, dtype=np.int64), pos, found)
        return pos, found

else:
    expand_ranges = _np_expand_ranges
    parent_sum = _np_parent_sum
    lookup_sorted = _np_lookup_sorted


def group_sum_sorted(cols: list[np.ndarray], vals: np.ndarray):
    """Group-by-sum over key columns: unique coordinates and their value sums.

    ``cols`` are equal-length int64 key columns, outermost key first; the
    result is ``(coords, sums)`` with ``coords`` an ``m × depth`` matrix of
    unique coordinates in lexicographic order and zero sums dropped (the
    semiring identifies a zero entry with an absent one).
    """
    n = vals.shape[0]
    if n == 0:
        return np.empty((0, len(cols)), dtype=np.int64), np.empty(0, dtype=np.float64)
    order = np.lexsort(tuple(reversed(cols)))
    sorted_cols = [np.ascontiguousarray(c[order]) for c in cols]
    sorted_vals = vals[order]
    boundary = np.zeros(n, dtype=bool)
    boundary[0] = True
    for column in sorted_cols:
        boundary[1:] |= column[1:] != column[:-1]
    starts = np.flatnonzero(boundary)
    sums = np.add.reduceat(sorted_vals, starts)
    coords = np.stack([column[starts] for column in sorted_cols], axis=1)
    nonzero = sums != 0
    if not np.all(nonzero):
        coords, sums = coords[nonzero], sums[nonzero]
    return coords, sums


# ---------------------------------------------------------------------------
# BufferLevels: the levelized nested-dictionary representation
# ---------------------------------------------------------------------------


class BufferLevels:
    """Levelized columnar storage of an integer-keyed nested dictionary.

    ``keys[d]`` holds the keys of every level-``d`` entry, concatenated in
    parent order and sorted within each parent segment.  ``seg[d]`` maps a
    level-``d-1`` entry ``e`` to its children ``keys[d][seg[d][e]:seg[d][e+1]]``
    (``seg[0]`` is the single root segment).  ``values`` is aligned with the
    deepest level's entries.  The global entry order is therefore
    (parent id, key)-ascending at every level, which is what makes batched
    per-segment lookups a single composite-key :func:`lookup_sorted`.
    """

    __slots__ = ("depth", "keys", "seg", "values", "_parents", "_comps")

    def __init__(self, keys: list[np.ndarray], seg: list[np.ndarray],
                 values: np.ndarray):
        self.depth = len(keys)
        self.keys = [np.ascontiguousarray(k, dtype=np.int64) for k in keys]
        self.seg = [np.ascontiguousarray(s, dtype=np.int64) for s in seg]
        self.values = np.ascontiguousarray(values, dtype=np.float64)
        self._parents: dict[int, np.ndarray] = {}
        self._comps: dict[int, tuple] = {}

    @classmethod
    def from_sorted_coords(cls, coords: np.ndarray, values: np.ndarray) -> "BufferLevels":
        """Build levels from **unique, lexicographically sorted** coordinates."""
        coords = np.asarray(coords, dtype=np.int64)
        if coords.ndim != 2:
            raise ValueError("coords must be an (n, depth) matrix")
        n, depth = coords.shape
        keys_levels: list[np.ndarray] = []
        segs: list[np.ndarray] = []
        prev_ids = np.zeros(n, dtype=np.int64)
        prev_count = 1
        for d in range(depth):
            if n:
                new = np.empty(n, dtype=bool)
                new[0] = True
                new[1:] = (prev_ids[1:] != prev_ids[:-1]) | (coords[1:, d] != coords[:-1, d])
                starts = np.flatnonzero(new)
                ids = np.cumsum(new) - 1
            else:
                starts = np.empty(0, dtype=np.int64)
                ids = prev_ids
            keys_d = coords[starts, d] if n else np.empty(0, dtype=np.int64)
            seg = np.zeros(prev_count + 1, dtype=np.int64)
            if starts.size:
                np.add.at(seg, prev_ids[starts] + 1, 1)
            seg = np.cumsum(seg)
            keys_levels.append(keys_d)
            segs.append(seg)
            prev_ids, prev_count = ids, keys_d.shape[0]
        return cls(keys_levels, segs, np.asarray(values, dtype=np.float64))

    def parents(self, level: int) -> np.ndarray:
        """Parent entry id (at ``level - 1``) of every level-``level`` entry."""
        cached = self._parents.get(level)
        if cached is None:
            seg = self.seg[level]
            cached = np.repeat(np.arange(seg.shape[0] - 1, dtype=np.int64), np.diff(seg))
            self._parents[level] = cached
        return cached

    def composite(self, level: int):
        """``(comp, kmin, kmax, big)`` for composite-key lookups, or ``None``.

        ``comp = parents(level) * big + (keys[level] - kmin)`` is globally
        ascending; ``None`` when the composite would overflow int64 (the
        backend then falls back to its Python loop).
        """
        cached = self._comps.get(level)
        if cached is None:
            keys = self.keys[level]
            if keys.size == 0:
                cached = (np.empty(0, dtype=np.int64), 0, -1, 1)
            else:
                kmin = int(keys.min())
                kmax = int(keys.max())
                big = kmax - kmin + 1
                parents = self.parents(level)
                span = int(parents[-1]) + 1 if parents.size else 1
                if big > 0 and span * big < (1 << 62):
                    cached = (parents * big + (keys - kmin), kmin, kmax, big)
                else:
                    cached = None
            self._comps[level] = cached
        return cached

    def lookup_level(self, level: int, owner: np.ndarray, keys: np.ndarray,
                     valid: np.ndarray | None = None):
        """Vectorized per-segment lookup: for every lane, find ``keys[i]``
        among the children of parent entry ``owner[i]`` at ``level``.

        ``owner < 0`` lanes (empty views) always miss.  Returns
        ``(positions, found)`` or ``None`` when the composite key overflows.
        """
        comp_info = self.composite(level)
        if comp_info is None:
            return None
        comp, kmin, kmax, big = comp_info
        in_range = (owner >= 0) & (keys >= kmin) & (keys <= kmax)
        if valid is not None:
            in_range = in_range & valid
        shifted = np.where(in_range, keys - kmin, 0)
        queries = np.where(in_range, owner, 0) * big + shifted
        pos, found = lookup_sorted(comp, queries)
        return pos, found & in_range

    def leaf_coords(self) -> np.ndarray:
        """The full coordinate of every leaf entry, as an ``(nnz, depth)`` matrix."""
        depth = self.depth
        cols: list[np.ndarray] = [None] * depth  # type: ignore[list-item]
        cols[depth - 1] = self.keys[depth - 1]
        ancestor = self.parents(depth - 1)
        for d in range(depth - 2, -1, -1):
            cols[d] = self.keys[d][ancestor]
            ancestor = self.parents(d)[ancestor]
        return np.stack(cols, axis=1) if self.values.size else \
            np.empty((0, depth), dtype=np.int64)

    @property
    def nnz(self) -> int:
        return int(self.values.shape[0])


class LevelView(NamedTuple):
    """A contiguous span of entries at one level of a :class:`BufferLevels`."""

    levels: BufferLevels
    level: int
    lo: int
    hi: int

    @property
    def is_leaf(self) -> bool:
        return self.level == self.levels.depth - 1

    def __len__(self) -> int:
        return self.hi - self.lo


# ---------------------------------------------------------------------------
# BufferDict: the lazy dictionary view handed back as a typed result
# ---------------------------------------------------------------------------


class BufferDict:
    """A dictionary view over one node of a :class:`BufferLevels`.

    Behaves like a read-only semiring dictionary: ``items()`` yields
    ``(int key, float | BufferDict)`` pairs and ``get`` is a binary search,
    so the generic value helpers (``iter_items`` / ``lookup`` / ``to_plain``
    / ``v_add``) consume it without conversion.  The ``result_to_*`` helpers
    in :mod:`repro.execution.engine` special-case root views and scatter the
    leaf buffer straight into a dense array instead of iterating.
    """

    __slots__ = ("levels", "level", "lo", "hi")

    def __init__(self, levels: BufferLevels, level: int = 0,
                 lo: int = 0, hi: int | None = None):
        self.levels = levels
        self.level = level
        self.lo = int(lo)
        self.hi = int(levels.keys[level].shape[0] if hi is None else hi)

    @property
    def is_root(self) -> bool:
        return (self.level == 0 and self.lo == 0
                and self.hi == self.levels.keys[0].shape[0])

    def _entry_value(self, entry: int):
        levels = self.levels
        if self.level == levels.depth - 1:
            return float(levels.values[entry])
        seg = levels.seg[self.level + 1]
        return BufferDict(levels, self.level + 1, int(seg[entry]), int(seg[entry + 1]))

    def items(self):
        keys = self.levels.keys[self.level]
        for entry in range(self.lo, self.hi):
            yield int(keys[entry]), self._entry_value(entry)

    def keys(self):
        return [int(k) for k in self.levels.keys[self.level][self.lo:self.hi]]

    def get(self, key, default=0):
        index = integral_index(key)
        if index is None or self.hi <= self.lo:
            return default
        keys = self.levels.keys[self.level]
        pos = self.lo + int(np.searchsorted(keys[self.lo:self.hi], index))
        if pos < self.hi and int(keys[pos]) == index:
            return self._entry_value(pos)
        return default

    def __getitem__(self, key):
        return self.get(key, 0)

    def __contains__(self, key) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def __len__(self) -> int:
        return max(0, self.hi - self.lo)

    def __bool__(self) -> bool:
        return self.hi > self.lo

    def __iter__(self):
        return iter(self.keys())

    def __eq__(self, other):
        from ..sdqlite.values import to_plain

        if is_scalar(other) and other == 0:
            return len(self) == 0
        if not is_dictlike(other):
            return NotImplemented
        return to_plain(self) == to_plain(other)

    def __hash__(self):  # pragma: no cover - dictionaries are not hashable
        raise TypeError("BufferDict is not hashable")

    def __repr__(self) -> str:
        entries = self.hi - self.lo
        return (f"BufferDict(level={self.level}, entries={entries}, "
                f"depth={self.levels.depth - self.level})")

    def to_dict(self) -> dict:
        from ..sdqlite.values import to_plain

        return to_plain(self)

    def scatter_into(self, out: np.ndarray) -> None:
        """Write every leaf into a dense array in one vectorized scatter.

        Only valid for root views whose depth equals ``out.ndim``; keys index
        ``out`` exactly like the per-entry ``out[key] = value`` loop of the
        generic ``result_to_*`` helpers (negative keys wrap, oversized keys
        raise).
        """
        if not self.is_root or self.levels.depth != out.ndim:
            raise ValueError("scatter_into requires a root view of matching rank")
        coords = self.levels.leaf_coords()
        if coords.shape[0] == 0:
            return
        out[tuple(coords[:, d] for d in range(coords.shape[1]))] = self.levels.values


# ---------------------------------------------------------------------------
# Conversion of runtime collections to buffer levels
# ---------------------------------------------------------------------------


def levels_from_mapping(value: Any) -> BufferLevels | None:
    """Levelize a nested dictionary-like value; ``None`` when not representable.

    Representable values have integral keys on every level, uniform nesting
    depth, and scalar leaves.  Leaf zeros are **kept** (iterating a stored
    zero entry must still bind its key), so conversion is exact for
    iteration; tuple keys, float keys, ragged depth and non-scalar leaves
    all return ``None`` and the backend falls back to a Python loop.
    """
    keys_per_level: list[list[int]] = []
    counts_per_level: list[list[int]] = []
    leaf_values: list[float] = []
    leaf_depth: list[int | None] = [None]

    def walk(node, depth: int) -> bool:
        try:
            pairs = []
            for key, item in iter_items(node):
                index = integral_index(key)
                if index is None:
                    return False
                pairs.append((index, item))
        except Exception:
            return False
        pairs.sort(key=lambda pair: pair[0])
        while len(keys_per_level) <= depth:
            keys_per_level.append([])
            counts_per_level.append([])
        for index, item in pairs:
            keys_per_level[depth].append(index)
            if is_scalar(item):
                if leaf_depth[0] is None:
                    leaf_depth[0] = depth
                if leaf_depth[0] != depth:
                    return False
                counts_per_level[depth].append(0)
                leaf_values.append(float(item))
            else:
                if leaf_depth[0] is not None and leaf_depth[0] == depth:
                    return False
                before = len(keys_per_level[depth + 1]) \
                    if len(keys_per_level) > depth + 1 else 0
                if not walk(item, depth + 1):
                    return False
                after = len(keys_per_level[depth + 1])
                counts_per_level[depth].append(after - before)
        return True

    if not walk(value, 0):
        return None
    if leaf_depth[0] is None:
        if not any(keys_per_level):
            # Entirely empty: identify with the semiring zero (depth 1,
            # no entries).
            return BufferLevels([np.empty(0, dtype=np.int64)],
                                [np.array([0, 0], dtype=np.int64)],
                                np.empty(0, dtype=np.float64))
        # Chains of dicts with no scalar leaf ({1: {}}): every keyed level
        # is structural and the deepest level is empty everywhere.
        depth = len(keys_per_level)
    else:
        depth = leaf_depth[0] + 1
    if any(keys_per_level[d] for d in range(depth, len(keys_per_level))):
        return None
    if len(leaf_values) != len(keys_per_level[depth - 1]):
        # Mixed scalar / empty-dict siblings at the leaf level would
        # misalign values with keys; fall back to the Python path.
        return None
    keys = [np.asarray(keys_per_level[d], dtype=np.int64) for d in range(depth)]
    segs = [np.array([0, len(keys_per_level[0])], dtype=np.int64)]
    for d in range(depth - 1):
        segs.append(np.concatenate([
            np.zeros(1, dtype=np.int64),
            np.cumsum(np.asarray(counts_per_level[d], dtype=np.int64)),
        ]))
    return BufferLevels(keys, segs, np.asarray(leaf_values, dtype=np.float64))


def to_buffer_levels(value: Any) -> LevelView | None:
    """A :class:`LevelView` over any dictionary-like collection, else ``None``."""
    if isinstance(value, BufferDict):
        return LevelView(value.levels, value.level, value.lo, value.hi)
    levels = levels_from_mapping(value)
    if levels is None:
        return None
    return LevelView(levels, 0, 0, levels.keys[0].shape[0])
