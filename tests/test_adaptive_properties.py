"""Property tests for the adaptive feedback loop (repro.core.feedback).

The loop's contract, pinned property-style (see ``docs/adaptive.md``):

* **feedback converges** — feeding back the *exact* observed cardinality of a
  loop must make the cost model's estimate for that loop match the
  observation, so the q-error of every profiled loop is non-increasing
  across consecutive profiled runs on unchanged data;
* **refinement is idempotent** — ingesting the same profile twice adopts
  nothing new the second time (estimates already include the first
  ingest's observations), so the epoch — and with it statement
  re-preparation — settles instead of oscillating;
* the observation overlay only ever *replaces the cardinality* of a node the
  estimator would otherwise mispredict: costs keep their formulas, open
  expressions and unrelated nodes are untouched, and any catalog mutation
  clears the overlay.

Hypothesis drives the data shapes; every backend is exercised through the
same public ``Session`` surface the serving layer uses.
"""

import numpy as np
import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.core.cardinality import Card, CardinalityEstimator  # noqa: E402
from repro.core.cost import CostModel  # noqa: E402
from repro.core.feedback import FeedbackConfig, FeedbackStore, q_error  # noqa: E402
from repro.core.statistics import Statistics  # noqa: E402
from repro.execution.engine import BACKENDS  # noqa: E402
from repro.execution.profile import (  # noqa: E402
    ExecutionProfile,
    observed_card,
    sum_sources_of,
)
from repro.sdqlite.ast import Idx, Sym  # noqa: E402
from repro.sdqlite.debruijn import to_debruijn_safe  # noqa: E402
from repro.sdqlite.parser import parse_expr  # noqa: E402
from repro.session import Session  # noqa: E402
from repro.storage import CSRFormat, DenseFormat  # noqa: E402

SIZE = 24
SUM_V = "sum(<i, v> in X) v"
FILTERED = "sum(<i, v> in X) (if (v > 0.5) then v)"


def vector_session(values, **feedback):
    session = Session(feedback=FeedbackConfig(**feedback) if feedback else None)
    session.register(DenseFormat.from_dense("X", np.asarray(values, float)))
    return session


def closed_plan(source):
    return to_debruijn_safe(parse_expr(source))


# ---------------------------------------------------------------------------
# q_error
# ---------------------------------------------------------------------------

positive = st.floats(min_value=0.0, max_value=1e9, allow_nan=False)


@given(positive, positive)
def test_q_error_is_at_least_one(estimated, actual):
    assert q_error(estimated, actual) >= 1.0


@given(positive, positive)
def test_q_error_is_symmetric(estimated, actual):
    assert q_error(estimated, actual) == q_error(actual, estimated)


@given(positive)
def test_q_error_of_exact_estimate_is_one(value):
    assert q_error(value, value) == 1.0


@given(st.floats(min_value=0.0, max_value=1.0),
       st.floats(min_value=0.0, max_value=1.0))
def test_q_error_clamps_sub_row_cardinalities(estimated, actual):
    """Below one row there is nothing to misestimate: never an error."""
    assert q_error(estimated, actual) == 1.0


@given(st.floats(min_value=1.0, max_value=1e4),
       st.floats(min_value=1.0, max_value=1e4))
def test_q_error_is_the_larger_ratio(factor, base):
    assert q_error(factor * base, base) == pytest.approx(max(factor, 1.0 / 1.0))


# ---------------------------------------------------------------------------
# the observation overlay (Statistics / estimator / cost model)
# ---------------------------------------------------------------------------


@given(st.floats(min_value=1.0, max_value=1e6))
@settings(max_examples=50)
def test_observation_overrides_the_estimate_exactly(size):
    stats = Statistics()
    stats.profiles["X"] = Card.of(100.0)
    expr = to_debruijn_safe(Sym("X"))
    stats.observe(expr, Card(size, Card.scalar()))
    estimated = CardinalityEstimator(stats).estimate(expr, ())
    assert estimated.size() == pytest.approx(size)


def test_observation_does_not_touch_other_expressions():
    stats = Statistics()
    stats.profiles["X"] = Card.of(100.0)
    stats.profiles["Y"] = Card.of(7.0)
    stats.observe(to_debruijn_safe(Sym("X")), Card.of(3.0))
    estimator = CardinalityEstimator(stats)
    assert estimator.estimate(to_debruijn_safe(Sym("Y")), ()).size() == 7.0


def test_cost_model_adopts_observed_card_but_keeps_the_cost_formula():
    """The overlay corrects *cardinalities*; each node's cost formula stays."""
    stats = Statistics()
    stats.profiles["X"] = Card.of(100.0)
    expr = to_debruijn_safe(Sym("X"))
    before = CostModel(stats).analyze(expr)
    stats.observe(expr, Card.of(5.0))
    after = CostModel(stats).analyze(expr)
    assert after.card.size() == 5.0
    assert after.cost == before.cost
    assert after.kind == before.kind


def test_with_selectivity_carries_observations_with_formats_drops_them():
    stats = Statistics()
    stats.profiles["X"] = Card.of(100.0)
    expr = to_debruijn_safe(Sym("X"))
    stats.observe(expr, Card.of(5.0))
    assert stats.with_selectivity(0.5).observation(expr) is not None
    # A hypothetical format change re-derives everything: stale observations
    # about the old layout must not leak into what-if costing.
    assert not stats.with_formats({}).observations


def test_clear_observations_empties_the_overlay():
    stats = Statistics()
    expr = to_debruijn_safe(Sym("X"))
    stats.observe(expr, Card.of(5.0))
    stats.clear_observations()
    assert stats.observation(expr) is None


# ---------------------------------------------------------------------------
# FeedbackConfig / FeedbackStore mechanics
# ---------------------------------------------------------------------------


def test_feedback_config_rejects_zero_sampling():
    with pytest.raises(ValueError, match="sample_every"):
        FeedbackConfig(sample_every=0)


def test_feedback_config_rejects_sub_one_threshold():
    with pytest.raises(ValueError, match="threshold"):
        FeedbackConfig(threshold=0.5)


@given(st.integers(min_value=1, max_value=7), st.integers(min_value=1, max_value=40))
@settings(max_examples=30)
def test_should_sample_fires_every_kth_call_starting_with_the_first(k, calls):
    store = FeedbackStore(FeedbackConfig(sample_every=k))
    fired = [store.should_sample() for _ in range(calls)]
    assert fired == [index % k == 0 for index in range(calls)]


def test_ingest_version_backstop_clears_foreign_observations():
    """A catalog mutated behind the session's back must not keep stale cards."""
    stats = Statistics()
    stats.profiles["X"] = Card.of(100.0)
    stats.observe(to_debruijn_safe(Sym("X")), Card.of(3.0))
    store = FeedbackStore(FeedbackConfig(sample_every=1))

    class NoLoops:
        plan = None

        def loop_sources(self):
            return {}

    store.ingest(stats, NoLoops(), ExecutionProfile(), catalog_version=1)
    assert not stats.observations
    stats.observe(to_debruijn_safe(Sym("X")), Card.of(3.0))
    store.ingest(stats, NoLoops(), ExecutionProfile(), catalog_version=1)
    assert stats.observations  # same version: overlay left alone


def test_store_snapshot_reports_lifetime_counters():
    store = FeedbackStore(FeedbackConfig(sample_every=4, threshold=3.0))
    snapshot = store.snapshot()
    assert snapshot == {"epoch": 0, "profiled_runs": 0,
                        "observations_checked": 0, "misestimations": 0,
                        "refinements": 0, "sample_every": 4, "threshold": 3.0}


# ---------------------------------------------------------------------------
# ExecutionProfile / observed_card
# ---------------------------------------------------------------------------


def test_profile_means_iterations_over_loop_entries():
    profile = ExecutionProfile()
    profile.record_loop("slot", 10.0)
    profile.record_loop("slot", 20.0)
    assert profile.mean_iterations("slot") == 15.0
    assert profile.mean_iterations("other") is None


def test_loop_observations_drop_open_and_unknown_sources():
    profile = ExecutionProfile()
    profile.record_loop(0, 8.0)
    profile.record_loop(1, 4.0)
    profile.record_loop(2, 2.0)
    closed = to_debruijn_safe(Sym("X"))
    observed = profile.loop_observations({0: closed, 1: Idx(0)})
    assert observed == {closed: 8.0}  # Idx(0) is open, slot 2 has no source


@given(st.lists(st.lists(st.floats(min_value=0.1, max_value=9.0),
                         min_size=1, max_size=5),
                min_size=1, max_size=6))
@settings(max_examples=40)
def test_observed_card_top_level_is_exact(rows):
    value = {i: {j: x for j, x in enumerate(row)} for i, row in enumerate(rows)}
    card = observed_card(value)
    assert card.count == len(rows)
    assert not card.is_scalar


def test_observed_card_of_a_scalar_is_scalar():
    assert observed_card(3.5).is_scalar


def test_observed_card_of_empty_buffer_dict_truncates_at_empty_level():
    # Regression: the BufferDict fast path used to emit a 0.0 per *declared*
    # level below an empty one — zero-cardinality observations for loops that
    # never ran, which poisoned the feedback overlay.  An empty level has no
    # children; the card must stop there.
    from repro.execution.buffers import BufferDict, BufferLevels

    levels = BufferLevels.from_sorted_coords(
        np.empty((0, 3), dtype=np.int64), np.empty(0))
    card = observed_card(BufferDict(levels))
    assert card.count == 0.0
    assert card.elem().is_scalar  # truncated: no spurious deeper levels


def test_observed_card_of_nonempty_buffer_dict_is_exact_per_level():
    from repro.execution.buffers import BufferDict, BufferLevels

    coords = np.array([[0, 0], [0, 1], [2, 0]], dtype=np.int64)
    levels = BufferLevels.from_sorted_coords(coords, np.ones(3))
    card = observed_card(BufferDict(levels))
    assert card.count == 2.0            # two distinct outer keys
    assert card.elem().count == 1.5     # three inner entries over two parents


def test_sum_sources_of_finds_every_loop():
    plan = closed_plan("sum(<i, v> in X) sum(<j, w> in v) w")
    assert len(sum_sources_of(plan)) == 2


# ---------------------------------------------------------------------------
# the convergence property, end-to-end per backend
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_profiled_run_reports_feedback_counters(backend):
    session = vector_session(np.arange(SIZE, dtype=float), sample_every=1)
    statement = session.prepare(SUM_V, backend=backend)
    stats: dict = {}
    result = statement.execute_with_stats(stats)
    assert result == pytest.approx(float(np.arange(SIZE).sum()))
    assert stats["profiled_runs"] == 1
    assert stats["feedback_checked"] >= 1
    assert stats["feedback_max_q_error"] >= 1.0


@pytest.mark.parametrize("backend", BACKENDS)
def test_unprofiled_run_reports_no_feedback_counters(backend):
    session = vector_session(np.arange(SIZE, dtype=float))
    stats: dict = {}
    session.prepare(SUM_V, backend=backend).execute_with_stats(stats)
    assert "profiled_runs" not in stats
    assert session.feedback is None


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("program", [SUM_V, FILTERED])
def test_feedback_q_error_never_worsens_on_static_data(backend, program):
    """Exact observations make estimates match: q-error is non-increasing."""
    rng = np.random.default_rng(11)
    session = vector_session(rng.random(SIZE), sample_every=1, threshold=1.01)
    statement = session.prepare(program, backend=backend)
    errors = []
    for _ in range(4):
        stats: dict = {}
        statement.execute_with_stats(stats)
        errors.append(stats["feedback_max_q_error"])
    assert all(late <= early + 1e-9
               for early, late in zip(errors, errors[1:]))
    # Once adopted, the observation *is* the estimate: the final profiled
    # run sees (essentially) no error left on anything it can observe.
    assert errors[-1] <= max(1.02, errors[0])


@pytest.mark.parametrize("backend", BACKENDS)
def test_refinement_is_idempotent_on_static_data(backend):
    """After the loop settles, further profiled runs adopt nothing new."""
    rng = np.random.default_rng(5)
    session = vector_session(rng.random(SIZE), sample_every=1, threshold=1.01)
    statement = session.prepare(FILTERED, backend=backend)
    statement.execute()
    settled = session.feedback.epoch
    before = statement.execute()
    for _ in range(3):
        assert statement.execute() == pytest.approx(before)
    assert session.feedback.epoch == settled
    assert session.feedback.refinements == settled


def test_ingesting_the_same_profile_twice_adopts_nothing_new():
    stats = Statistics()
    stats.profiles["X"] = Card.of(100.0)
    plan = closed_plan(SUM_V)
    (sum_node, source), = sum_sources_of(plan).items()

    class Prepared:
        plan = None

        def loop_sources(self):
            return {0: source}

    profile = ExecutionProfile()
    profile.record_loop(0, 40.0)
    store = FeedbackStore(FeedbackConfig(sample_every=1, threshold=1.5))
    first = store.ingest(stats, Prepared(), profile, catalog_version=0)
    assert first["feedback_refined"] == 1 and store.epoch == 1
    second = store.ingest(stats, Prepared(), profile, catalog_version=0)
    assert second["feedback_refined"] == 0 and store.epoch == 1
    assert second["feedback_max_q_error"] == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# session integration: transparent re-preparation, epoch discipline
# ---------------------------------------------------------------------------


def make_matrix_session(**feedback):
    rng = np.random.default_rng(3)
    a = np.where(rng.random((SIZE, SIZE)) < 0.3, rng.random((SIZE, SIZE)), 0.0)
    x = rng.random(SIZE)
    session = Session(feedback=FeedbackConfig(**feedback) if feedback else None)
    session.register(CSRFormat.from_dense("A", a))
    session.register(DenseFormat.from_dense("X", x))
    return session, a, x


def test_misestimation_triggers_transparent_reprepare():
    session, a, x = make_matrix_session(sample_every=1, threshold=2.0)
    program = "sum(<i, Ai> in A) sum(<j, v> in Ai) v * X(j)"
    statement = session.prepare(program, backend="vectorize")
    # Corrupt the derived statistics the optimizer loops over so the first
    # profiled run observes a massive q-error on the outer range loop.
    session.statistics().scalar_values["A_len1"] = 1_000_000.0
    expected = float((a @ x).sum())
    assert statement.execute() == pytest.approx(expected)
    assert session.feedback.epoch >= 1
    seen = statement._feedback_seen
    # The next execution revalidates against the moved epoch, re-prepares
    # with the adopted observation, and still returns the same value.
    assert statement.execute() == pytest.approx(expected)
    assert statement._feedback_seen == session.feedback.epoch >= seen


def test_catalog_mutation_clears_the_observation_overlay():
    session, _, _ = make_matrix_session(sample_every=1, threshold=1.01)
    statement = session.prepare(SUM_V.replace("X", "A"), backend="interpret")
    statement.execute()
    session.set_scalar("c", 2.0)
    assert not session.statistics().observations


def test_enable_feedback_is_idempotent_and_reconfigurable():
    session, _, _ = make_matrix_session()
    assert session.feedback is None
    session.enable_feedback(sample_every=2)
    store = session.feedback
    session.enable_feedback(sample_every=2)
    assert session.feedback is store          # same config: same store
    session.enable_feedback(sample_every=5)
    assert session.feedback is not store      # new config: fresh store


def test_disable_feedback_stops_the_loop_but_keeps_observations():
    session, _, _ = make_matrix_session(sample_every=1, threshold=1.01)
    session.statistics().scalar_values["A_len1"] = 1_000_000.0  # force a lie
    statement = session.prepare(SUM_AX, backend="compile")
    statement.execute()                       # profiled: adopts observations
    adopted = dict(session.statistics().observations)
    assert adopted

    session.disable_feedback()
    assert session.feedback is None
    assert session.feedback_report() == {}
    statement.execute()                       # no store: nothing profiled
    assert session.statistics().observations == adopted

    session.enable_feedback(sample_every=1)   # fresh store, reset counters
    assert session.feedback.profiled_runs == 0


def test_run_outcome_explain_renders_feedback_counters():
    session, _, _ = make_matrix_session(sample_every=1)
    outcome = session.run_detailed("sum(<i, Ai> in A) sum(<j, v> in Ai) v",
                                   backend="vectorize")
    rendered = outcome.explain()
    assert "feedback_checked" in rendered
    assert "profiled_runs" in rendered
    assert "feedback_max_q_error" in rendered


def test_feedback_report_mirrors_store_snapshot():
    session, _, _ = make_matrix_session(sample_every=1)
    assert session.feedback_report()["profiled_runs"] == 0
    session.prepare(SUM_V.replace("X", "A"), backend="compile").execute()
    report = session.feedback_report()
    assert report["profiled_runs"] == 1
    assert report["epoch"] == session.feedback.epoch


# ---------------------------------------------------------------------------
# serving-layer integration
# ---------------------------------------------------------------------------


def make_server(**overrides):
    from repro.serving import Server
    from repro.storage import Catalog

    rng = np.random.default_rng(3)
    a = np.where(rng.random((SIZE, SIZE)) < 0.3, rng.random((SIZE, SIZE)), 0.0)
    x = rng.random(SIZE)
    catalog = (Catalog()
               .add(CSRFormat.from_dense("A", a))
               .add(DenseFormat.from_dense("X", x)))
    return Server(catalog, **overrides), a, x


SUM_AX = "sum(<i, Ai> in A) sum(<j, v> in Ai) v * X(j)"


def test_server_profile_every_zero_disables_the_loop():
    server, a, x = make_server()
    with server:
        assert server.feedback is None
        assert server.feedback_report() == {}
        assert server.execute(SUM_AX) == pytest.approx(float((a @ x).sum()))
        assert server.stats.snapshot()["profiled_runs"] == 0


def test_server_profiled_requests_are_counted_and_correct():
    server, a, x = make_server(profile_every=1)
    with server:
        for _ in range(3):
            assert server.execute(SUM_AX) == pytest.approx(float((a @ x).sum()))
        snapshot = server.stats.snapshot()
        assert snapshot["profiled_runs"] == 3
        assert server.feedback_report()["profiled_runs"] == 3


def test_server_reoptimizes_without_schema_reprepare_on_misestimation():
    """A bumped adaptive epoch re-optimizes the plan; the schema never moved."""
    server, a, x = make_server(profile_every=1, reoptimize_threshold=2.0)
    with server:
        # Poison the snapshot's derived statistics so the first profiled run
        # observes a massive q-error on the outer loop's range.
        server._statistics_for(server.catalog.snapshot()).scalar_values[
            "A_len1"] = 1_000_000.0
        expected = float((a @ x).sum())
        assert server.execute(SUM_AX) == pytest.approx(expected)
        assert server.feedback.epoch >= 1
        assert server.execute(SUM_AX) == pytest.approx(expected)
        snapshot = server.stats.snapshot()
        assert snapshot["misestimations"] >= 1
        assert snapshot["re_optimizations"] >= 1
        assert snapshot["re_prepares"] == 0


# ---------------------------------------------------------------------------
# the adaptive fuzz oracle (divergence detection + seeded smoke)
# ---------------------------------------------------------------------------


def test_adaptive_fuzz_smoke_campaign_is_divergence_free():
    from repro.fuzz import adaptive_campaign

    report = adaptive_campaign(13, 12)
    assert report.cases_run == 12
    assert not report.divergences


def test_adaptive_oracle_detects_a_wrong_witness(monkeypatch):
    """If results ever disagreed with the reference, the oracle would say so."""
    import random

    from repro.fuzz import oracle
    from repro.fuzz.oracle import (
        case_seed,
        check_adaptive_case,
        generate_case,
        generate_delta_updates,
    )

    case = generate_case(case_seed(7, 12))
    deltas = generate_delta_updates(case, random.Random(case.seed ^ 0x0ADA9FED), 3)
    assert check_adaptive_case(case, deltas) is None
    real = oracle._ivm_state_results
    monkeypatch.setattr(oracle, "_ivm_state_results",
                        lambda *args: [{"wrong": 1.0}
                                       for _ in real(*args)])
    divergence = check_adaptive_case(case, deltas)
    assert divergence is not None
    assert divergence.expected == {"wrong": 1.0}
    assert divergence.step == -1
    assert "adaptive" in divergence.describe() or divergence.method
