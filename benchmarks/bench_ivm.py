"""Incremental view maintenance vs. full re-execution on Table-3 kernels.

The IVM subsystem's claim (``docs/ivm.md``): for small sparse updates, a
materialized view maintained through its derived delta program costs what
the *change* costs, while re-execution costs what the *query* costs.  This
benchmark registers two Table-3 kernels — MMM and MTTKRP — as views over
integer-valued sparse data, streams point-updates of at most 1% of the
tensor's nonzeros through :meth:`repro.serving.Server.update`, and times
each maintenance pass against a warm prepared statement re-executing the
kernel in full on the updated catalog.

Integer-valued data makes every arithmetic step exact in floating point,
so the maintained view must be **bit-equal** to full re-execution under
the fuzz oracle's canonical normalization — the benchmark asserts exact
equality, not closeness.  A fixed-seed IVM fuzz campaign
(``repro.fuzz.ivm_campaign``) runs alongside and its summary is embedded
in the report, so ``BENCH_ivm.json`` carries both the speedup and the
evidence that the speedup is not bought with wrong answers.

Run as pytest (``pytest benchmarks/bench_ivm.py``) or directly
(``python benchmarks/bench_ivm.py [--smoke]``).  ``--smoke`` (or
``REPRO_SMOKE=1``) shrinks the data and the campaign for CI.
"""

import argparse
import json
import os
import platform
import time

import numpy as np

from _config import print_report
from repro.fuzz import canonical, ivm_campaign
from repro.kernels import KERNELS
from repro.serving import Server
from repro.storage import Catalog
from repro.storage.formats import CSCFormat, CSFFormat, CSRFormat
from repro.workloads.reporting import format_table

#: Master seed for data generation and the embedded fuzz campaign.
SEED = int(os.environ.get("REPRO_IVM_SEED", "20260807"))

#: Point-updates streamed per kernel (each at most 1% of the nonzeros).
UPDATES = int(os.environ.get("REPRO_IVM_UPDATES", "3"))

_JSON_PATH = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                          "BENCH_ivm.json")


def _int_sparse(rng, shape, density):
    """Integer-valued sparse data: exact FP arithmetic -> bit-equal results."""
    mask = rng.random(shape) < density
    values = rng.integers(1, 5, size=shape).astype(np.float64)
    return np.where(mask, values, 0.0)


def _mmm_catalog(rng, smoke):
    n = 128 if smoke else 300
    a = _int_sparse(rng, (n, n), 0.01)
    b = _int_sparse(rng, (n, n), 0.01)
    catalog = (Catalog()
               .add(CSRFormat.from_dense("A", a))
               .add(CSCFormat.from_dense("B", b)))
    return catalog, "A"


def _mttkrp_catalog(rng, smoke):
    dims, nnz = ((40, 150, 150), 400) if smoke else ((50, 300, 300), 1500)
    rank = 8
    coords = np.unique(np.column_stack(
        [rng.integers(0, extent, nnz) for extent in dims]), axis=0)
    values = rng.integers(1, 5, len(coords)).astype(np.float64)
    catalog = (Catalog()
               .add(CSFFormat.from_coo("A", coords, values, dims))
               .add(CSRFormat.from_dense("B", _int_sparse(rng, (dims[1], rank), 0.3)))
               .add(CSCFormat.from_dense("C", _int_sparse(rng, (dims[2], rank), 0.3))))
    return catalog, "A"


CASES = (("MMM", _mmm_catalog), ("MTTKRP", _mttkrp_catalog))


def bench_kernel(name, make_catalog, rng, smoke):
    """Stream updates through one kernel's view; return the report row."""
    catalog, target = make_catalog(rng, smoke)
    kernel = KERNELS[name]
    shape = catalog[target].shape
    nnz = catalog[target].nnz
    delta_nnz = max(1, nnz // 200)            # 0.5% of the nonzeros per update

    with Server(catalog) as server:
        view = server.create_view(name, kernel.source)
        statement = server.session().prepare(kernel.source)
        statement.execute()                   # warm: optimize + lower once

        first_update_ms = None
        delta_ms, full_ms = [], []
        bit_equal = True
        for index in range(UPDATES):
            coords = np.column_stack(
                [rng.integers(0, extent, delta_nnz) for extent in shape])
            values = rng.integers(1, 5, delta_nnz).astype(np.float64)

            start = time.perf_counter()
            server.update(target, coords, values)
            elapsed = (time.perf_counter() - start) * 1e3
            if index == 0:
                first_update_ms = elapsed     # includes delta derivation + prepare
            else:
                delta_ms.append(elapsed)

            start = time.perf_counter()
            recomputed = statement.execute()
            full_ms.append((time.perf_counter() - start) * 1e3)

            bit_equal &= (canonical(view.value(), abs_tol=0.0)
                          == canonical(recomputed, abs_tol=0.0))

        maintained_by_delta = view.delta_refreshes == UPDATES
        stats = server.stats.snapshot()

    mean_delta = (sum(delta_ms) / len(delta_ms)) if delta_ms else first_update_ms
    mean_full = sum(full_ms) / len(full_ms)
    return {
        "kernel": name,
        "tensor": target,
        "nnz": nnz,
        "delta_nnz": delta_nnz,
        "updates": UPDATES,
        "first_update_ms": round(first_update_ms, 3),
        "delta_mean_ms": round(mean_delta, 3),
        "full_mean_ms": round(mean_full, 3),
        "speedup": round(mean_full / mean_delta, 2),
        "maintained_by_delta": maintained_by_delta,
        "bit_equal": bit_equal,
        "maintenance_mean_ms": stats["maintenance_mean_ms"],
    }


def run_bench(smoke: bool | None = None) -> dict:
    """Both kernels plus the embedded fuzz campaign; returns the JSON report."""
    if smoke is None:
        smoke = os.environ.get("REPRO_SMOKE", "") not in ("", "0")
    rng = np.random.default_rng(SEED)
    rows = [bench_kernel(name, make, rng, smoke) for name, make in CASES]

    cases = 60 if smoke else 250
    report = ivm_campaign(SEED, cases, updates_per_case=4)
    campaign = {
        "seed": SEED,
        "cases_run": report.cases_run,
        "skipped": report.skipped,
        "divergences": len(report.divergences),
        "elapsed_s": round(report.elapsed, 2),
        "ok": report.ok,
    }

    table = format_table(rows, title=f"IVM — delta maintenance vs full "
                                     f"re-execution ({UPDATES} updates of "
                                     f"<=1% nnz per kernel)")
    print_report(table + f"\nfuzz campaign: {report.summary()}")
    return {
        "benchmark": "ivm",
        "seed": SEED,
        "smoke": smoke,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "rows": rows,
        "campaign": campaign,
        "min_speedup": min(row["speedup"] for row in rows),
    }


def _check(report: dict) -> None:
    assert all(row["bit_equal"] for row in report["rows"]), \
        "maintained view diverged from full re-execution"
    assert all(row["maintained_by_delta"] for row in report["rows"]), \
        "cost model fell back to full refresh at benchmark scale"
    assert report["campaign"]["ok"], "IVM fuzz campaign found divergences"
    # The acceptance point: at full scale, small-delta maintenance beats
    # full re-execution by >=5x on every kernel (smoke scale is sized for
    # CI wall-clock, not for the ratio, so it only sanity-checks >2x).
    floor = 2.0 if report["smoke"] else 5.0
    assert report["min_speedup"] >= floor, \
        f"expected >={floor}x from delta maintenance, worst was {report['min_speedup']}x"


def test_ivm_bench(benchmark):
    """Both kernels, bit-equality-checked; writes BENCH_ivm.json."""
    report = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    with open(_JSON_PATH, "w") as handle:
        json.dump(report, handle, indent=2)
    _check(report)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="shrunk data + campaign for CI smoke runs")
    args = parser.parse_args()
    report = run_bench(smoke=True if args.smoke else None)
    with open(_JSON_PATH, "w") as handle:
        json.dump(report, handle, indent=2)
    _check(report)
    print(f"wrote {_JSON_PATH} (min speedup {report['min_speedup']}x, "
          f"campaign ok={report['campaign']['ok']})")


if __name__ == "__main__":
    import sys
    sys.exit(main())
