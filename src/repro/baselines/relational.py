"""The relational baseline: a small in-memory engine standing in for DuckDB.

The paper encodes every tensor as a relation (one row per non-zero, columns =
coordinates plus value — essentially COO) and runs the kernels as
aggregate-join SQL queries in DuckDB.  DuckDB's plans, as discussed in
Sec. 6.1, are binary hash-join trees with the aggregation applied at the end:
the summation is not pushed below the joins and the computation is never
factorized, which is exactly what makes ΣMMM / BATAX / MTTKRP expensive while
TTM (a single aggregate-join) remains fast.

This module reproduces that behaviour with an explicit little query engine:

* :class:`Relation` — a named list of equal-length columns,
* :func:`hash_join` — a classic build/probe equi-join,
* :func:`aggregate` — grouping + summation,
* :class:`RelationalSystem` — fixed left-deep binary join plans per kernel,
  aggregation last.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..kernels.programs import Kernel
from ..storage.catalog import Catalog
from ..storage.convert import coo_arrays
from .base import NotSupportedError, RunCallable, System, output_shape


@dataclass
class Relation:
    """A relation stored column-wise; all columns have the same length."""

    columns: dict[str, np.ndarray] = field(default_factory=dict)

    @classmethod
    def from_tensor(cls, fmt, coordinate_names: Sequence[str], value_name: str) -> "Relation":
        coords, values = coo_arrays(fmt)
        columns = {name: coords[:, axis].astype(np.int64)
                   for axis, name in enumerate(coordinate_names)}
        columns[value_name] = values.astype(np.float64)
        return cls(columns)

    @classmethod
    def from_vector(cls, fmt, coordinate_name: str, value_name: str) -> "Relation":
        dense = fmt.to_dense()
        nz = np.nonzero(dense)[0]
        return cls({coordinate_name: nz.astype(np.int64),
                    value_name: dense[nz].astype(np.float64)})

    def __len__(self) -> int:
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    @property
    def schema(self) -> list[str]:
        return list(self.columns)

    def column(self, name: str) -> np.ndarray:
        return self.columns[name]


def hash_join(left: Relation, right: Relation, keys: Sequence[str]) -> Relation:
    """Equi-join two relations on the named key columns (build on the right)."""
    keys = list(keys)
    build: dict[tuple, list[int]] = {}
    right_key_columns = [right.column(key) for key in keys]
    for row in range(len(right)):
        build.setdefault(tuple(int(col[row]) for col in right_key_columns), []).append(row)

    left_key_columns = [left.column(key) for key in keys]
    left_rows: list[int] = []
    right_rows: list[int] = []
    for row in range(len(left)):
        probe = tuple(int(col[row]) for col in left_key_columns)
        for match in build.get(probe, ()):
            left_rows.append(row)
            right_rows.append(match)

    columns: dict[str, np.ndarray] = {}
    left_index = np.array(left_rows, dtype=np.int64)
    right_index = np.array(right_rows, dtype=np.int64)
    for name, column in left.columns.items():
        columns[name] = column[left_index] if len(left_index) else column[:0]
    for name, column in right.columns.items():
        if name in keys:
            continue
        columns[name] = column[right_index] if len(right_index) else column[:0]
    return Relation(columns)


def multiply_values(relation: Relation, value_columns: Sequence[str], out: str) -> Relation:
    """Add a column ``out`` holding the product of the given value columns."""
    product = np.ones(len(relation), dtype=np.float64)
    for name in value_columns:
        product = product * relation.column(name)
    columns = dict(relation.columns)
    columns[out] = product
    return Relation(columns)


def aggregate(relation: Relation, group_by: Sequence[str], value_column: str) -> Relation:
    """``SELECT group_by, SUM(value) ... GROUP BY group_by`` (hash aggregation)."""
    group_by = list(group_by)
    sums: dict[tuple, float] = {}
    group_columns = [relation.column(name) for name in group_by]
    values = relation.column(value_column)
    for row in range(len(relation)):
        key = tuple(int(col[row]) for col in group_columns)
        sums[key] = sums.get(key, 0.0) + float(values[row])
    keys = list(sums.keys())
    columns = {name: np.array([key[axis] for key in keys], dtype=np.int64)
               for axis, name in enumerate(group_by)}
    columns[value_column] = np.array([sums[key] for key in keys], dtype=np.float64)
    return Relation(columns)


def scalar_aggregate(relation: Relation, value_column: str) -> float:
    """``SELECT SUM(value)`` without grouping."""
    if len(relation) == 0:
        return 0.0
    return float(relation.column(value_column).sum())


@dataclass
class RelationalSystem(System):
    """Binary-join plans with late aggregation (DuckDB stand-in)."""

    name: str = "Relational"

    def prepare(self, kernel: Kernel, catalog: Catalog) -> RunCallable:
        name = kernel.name.upper()
        shape = output_shape(kernel, catalog)
        beta = catalog.scalars.get("beta", 1.0)

        if name == "MMM":
            a = Relation.from_tensor(catalog["A"], ("i", "k"), "va")
            b = Relation.from_tensor(catalog["B"], ("k", "j"), "vb")

            def run():
                joined = multiply_values(hash_join(a, b, ["k"]), ["va", "vb"], "v")
                result = aggregate(joined, ["i", "j"], "v")
                return _to_dense(result, ["i", "j"], "v", shape)

            return run

        if name == "SUMMM":
            a = Relation.from_tensor(catalog["A"], ("i", "k"), "va")
            b = Relation.from_tensor(catalog["B"], ("k", "j"), "vb")

            def run():
                # The aggregation is NOT pushed below the join: the full join
                # result is materialized first (the paper's explanation for
                # DuckDB's poor ΣMMM performance).
                joined = multiply_values(hash_join(a, b, ["k"]), ["va", "vb"], "v")
                return scalar_aggregate(joined, "v")

            return run

        if name.startswith("BATAX"):
            a1 = Relation.from_tensor(catalog["A"], ("i", "j"), "va1")
            a2 = Relation.from_tensor(catalog["A"], ("i", "k"), "va2")
            x = Relation.from_vector(catalog["X"], "k", "vx")

            def run():
                self_join = hash_join(a1, a2, ["i"])
                with_x = hash_join(self_join, x, ["k"])
                product = multiply_values(with_x, ["va1", "va2", "vx"], "v")
                result = aggregate(product, ["j"], "v")
                dense = _to_dense(result, ["j"], "v", shape)
                return beta * dense

            return run

        if name == "TTM":
            a = Relation.from_tensor(catalog["A"], ("i", "j", "l"), "va")
            b = Relation.from_tensor(catalog["B"], ("k", "l"), "vb")

            def run():
                joined = multiply_values(hash_join(a, b, ["l"]), ["va", "vb"], "v")
                result = aggregate(joined, ["i", "j", "k"], "v")
                return _to_dense(result, ["i", "j", "k"], "v", shape)

            return run

        if name == "MTTKRP":
            a = Relation.from_tensor(catalog["A"], ("i", "k", "l"), "va")
            b = Relation.from_tensor(catalog["B"], ("k", "j"), "vb")
            c = Relation.from_tensor(catalog["C"], ("l", "j"), "vc")

            def run():
                ab = hash_join(a, b, ["k"])
                abc = hash_join(ab, c, ["l", "j"])
                product = multiply_values(abc, ["va", "vb", "vc"], "v")
                result = aggregate(product, ["i", "j"], "v")
                return _to_dense(result, ["i", "j"], "v", shape)

            return run

        raise NotSupportedError(f"relational baseline does not implement {kernel.name}")


def _to_dense(relation: Relation, key_columns: Sequence[str], value_column: str,
              shape: tuple[int, ...]) -> np.ndarray:
    out = np.zeros(shape, dtype=np.float64)
    key_arrays = [relation.column(name) for name in key_columns]
    values = relation.column(value_column)
    for row in range(len(relation)):
        out[tuple(int(col[row]) for col in key_arrays)] = values[row]
    return out
