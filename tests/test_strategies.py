"""Tests for the term-level rewrite transformations (factorization, fusion, etc.).

Every transformation must preserve the semantics of the expression it is
applied to; this is checked both on the paper's examples and property-style
on random data for the full kernel pipelines.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import compose, strategies
from repro.core.strategies import (
    candidate_plans,
    factorize,
    fuse,
    hoist_dict,
    hoist_factor,
    hoist_if,
    hoist_let_from_source,
    inline_let,
    introduce_merge,
    is_strict_in,
    lookup_of_range_sum,
    simplify_node,
    sum_to_lookup,
    fuse_sum_of_sum,
)
from repro.data.synthetic import random_dense_vector, random_sparse_matrix
from repro.kernels import BATAX_NESTED, KERNELS, MMM, MTTKRP, SUM_MMM, TTM, BATAX
from repro.sdqlite import evaluate, parse_expr, to_debruijn, values_equal
from repro.sdqlite.ast import Idx, Let, Merge, Mul, Sum, DictExpr, IfThen
from repro.storage import Catalog, CSFFormat, CSRFormat, CSCFormat, DenseFormat, TrieFormat
from repro.data.synthetic import random_sparse_tensor3


def db(source):
    return to_debruijn(parse_expr(source))


def check_equivalent(before, after, env):
    assert after is not None
    assert values_equal(evaluate(before, env), evaluate(after, env)), (
        f"transformation changed semantics\nbefore: {before}\nafter: {after}")


# ---------------------------------------------------------------------------
# individual transformations
# ---------------------------------------------------------------------------


def test_hoist_factor_moves_invariant_out():
    term = db("sum(<i, v> in A) beta * v")
    out = hoist_factor(term)
    assert isinstance(out, Mul)
    env = {"A": {0: 1.0, 2: 3.0}, "beta": 2.0}
    check_equivalent(term, out, env)
    # nothing to hoist when every factor depends on the loop
    assert hoist_factor(db("sum(<i, v> in A) v * v")) is None


def test_hoist_dict_paper_batax_first_factorization():
    # Sec. 6.3: hoist the dictionary construction out of the inner sum.
    term = db("sum(<k, w> in Ai) { j -> w * X(k) }")
    # j is a free variable here, so wrap in an outer binder to make it bound.
    outer = Sum(db("A"), term)
    inner_before = outer.body
    out = hoist_dict(inner_before)
    assert isinstance(out, DictExpr)
    env = {"A": {0: 1.0}, "Ai": {0: 2.0, 3: 4.0}, "X": {0: 1.0, 3: 2.0}, "j": 5}
    check_equivalent(db("sum(<k, w> in Ai) { 5 -> w * X(k) }"),
                     hoist_dict(db("sum(<k, w> in Ai) { 5 -> w * X(k) }")), env)


def test_hoist_if_moves_invariant_condition():
    term = db("sum(<i, v> in A) if (c > 0) then v")
    out = hoist_if(term)
    assert isinstance(out, IfThen)
    for c in (-1.0, 1.0):
        check_equivalent(term, out, {"A": {0: 2.0, 1: 3.0}, "c": c})
    assert hoist_if(db("sum(<i, v> in A) if (v > 0) then v")) is None


def test_sum_to_lookup_f1():
    term = db("sum(<i, a> in A) if (i == j) then a * 2")
    out = sum_to_lookup(term)
    assert isinstance(out, Let)
    env = {"A": {0: 5.0, 3: 7.0}, "j": 3}
    check_equivalent(term, out, env)
    # missing key: both sides must be zero (body is strict in the value)
    check_equivalent(term, out, {"A": {0: 5.0}, "j": 9})
    # a non-strict body must not be rewritten
    assert sum_to_lookup(db("sum(<i, a> in A) if (i == j) then a + 1")) is None


def test_fuse_sum_of_sum_f3():
    source = """
    sum(<col, val> in (sum(<off, c> in A_idx(0:3)) { @unique c -> A_val(off) }))
      { col -> val * X(col) }
    """
    term = db(source)
    out = fuse_sum_of_sum(term)
    assert isinstance(out, Sum) and isinstance(out.body, Let)
    env = {
        "A_idx": np.array([4, 1, 3]),
        "A_val": np.array([10.0, 20.0, 30.0]),
        "X": {1: 2.0, 3: 3.0, 4: 4.0},
    }
    check_equivalent(term, out, env)


def test_fuse_sum_of_sum_f2():
    source = """
    sum(<k, v> in (sum(<i, a> in A) { i -> a * 2 })) { k -> v + v }
    """
    term = db(source)
    out = fuse_sum_of_sum(term)
    assert out is not None
    check_equivalent(term, out, {"A": {0: 1.0, 5: 2.0}})


def test_fuse_requires_unique_or_key_identity():
    # keys come from an arbitrary expression without @unique: no fusion
    term = db("sum(<k, v> in (sum(<i, a> in A) { B(i) -> a })) { k -> v * 2 }")
    assert fuse_sum_of_sum(term) is None


def test_introduce_merge_f4():
    source = """
    sum(<p1, x> in L) sum(<p2, y> in R) if (x == y) then { x -> V1(p1) * V2(p2) }
    """
    term = db(source)
    out = introduce_merge(term)
    assert isinstance(out, Merge)
    env = {
        "L": {0: 3, 1: 5, 2: 8},
        "R": {0: 5, 1: 7, 2: 8},
        "V1": np.array([1.0, 2.0, 3.0]),
        "V2": np.array([10.0, 20.0, 30.0]),
    }
    check_equivalent(term, out, env)


def test_hoist_let_from_source():
    term = db("sum(<i, v> in (let t = A in t)) { i -> v * 2 }")
    out = hoist_let_from_source(term)
    assert isinstance(out, Let)
    check_equivalent(term, out, {"A": {1: 4.0}})


def test_inline_let_beta_reduction():
    term = db("let t = 3 in t * t")
    assert inline_let(term) == db("3 * 3")
    term = db("let t = A(2) in t + 1")
    check_equivalent(term, inline_let(term), {"A": {2: 5.0}})


def test_lookup_of_range_sum():
    term = db("(sum(<i, _> in 0:4) { i -> V(i) })(k)")
    out = lookup_of_range_sum(term)
    assert out is not None
    for k in (0, 2, 7):
        check_equivalent(term, out, {"V": np.array([1.0, 2.0, 3.0, 4.0]), "k": k})


def test_simplify_node_rules():
    assert simplify_node(db("x + 0")) == db("x")
    assert simplify_node(db("x * 0")) == db("0")
    assert simplify_node(db("x * 1")) == db("x")
    assert simplify_node(db("x - x")) == db("0")
    assert simplify_node(db("if (true) then x")) == db("x")
    assert simplify_node(db("if (false) then x")) == db("0")
    assert simplify_node(db("if (y == y) then x")) == db("x")
    assert simplify_node(db("sum(<i, v> in A) 0")) == db("0")
    assert simplify_node(db("x * 2")) is None


def test_is_strict_in():
    assert is_strict_in(db("sum(<i, v> in A) v * B(i)").body, 0)
    assert is_strict_in(Idx(0), 0)
    assert not is_strict_in(db("sum(<i, v> in A) v + 1").body, 0)
    assert is_strict_in(db("{ 3 -> %0 * 2 }" .replace('%0', 'x')) , 0) is False


# ---------------------------------------------------------------------------
# full pipelines on every kernel / storage combination
# ---------------------------------------------------------------------------


def build_catalog(kernel_name, seed=0, size=10, density=0.3):
    rng_seed = seed
    a = random_sparse_matrix(size, size, density, seed=rng_seed)
    catalog = Catalog()
    if kernel_name in ("MMM", "SUMMM"):
        b = random_sparse_matrix(size, size, density, seed=rng_seed + 1)
        catalog.add(CSRFormat.from_dense("A", a))
        catalog.add(CSRFormat.from_dense("B", b))
    elif kernel_name in ("BATAX", "BATAX-nested"):
        catalog.add(CSRFormat.from_dense("A", a))
        catalog.add(DenseFormat.from_dense("X", random_dense_vector(size, seed=rng_seed + 2)))
        catalog.add_scalar("beta", 1.5)
    elif kernel_name == "TTM":
        coords, values = random_sparse_tensor3(size, 6, 7, 0.1, seed=rng_seed)
        catalog.add(CSFFormat.from_coo("A", coords, values, (size, 6, 7)))
        catalog.add(CSCFormat.from_dense("B", random_sparse_matrix(5, 7, 0.4, seed=rng_seed + 3)))
    elif kernel_name == "MTTKRP":
        coords, values = random_sparse_tensor3(size, 6, 7, 0.1, seed=rng_seed)
        catalog.add(CSFFormat.from_coo("A", coords, values, (size, 6, 7)))
        catalog.add(CSRFormat.from_dense("B", random_sparse_matrix(6, 4, 0.4, seed=rng_seed + 3)))
        catalog.add(CSCFormat.from_dense("C", random_sparse_matrix(7, 4, 0.4, seed=rng_seed + 4)))
    return catalog


@pytest.mark.parametrize("kernel_name", ["MMM", "SUMMM", "BATAX", "BATAX-nested", "TTM", "MTTKRP"])
def test_all_candidate_plans_preserve_semantics(kernel_name):
    kernel = KERNELS[kernel_name]
    catalog = build_catalog(kernel_name)
    naive = compose(kernel.program, catalog.mappings())
    env = catalog.globals()
    reference = evaluate(naive, env)
    for name, plan in candidate_plans(naive).items():
        assert values_equal(evaluate(plan, env), reference), (
            f"{kernel_name}: candidate plan {name!r} changed the result")


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       density=st.floats(min_value=0.0, max_value=0.6))
def test_property_batax_pipeline_preserves_semantics(seed, density):
    catalog = build_catalog("BATAX-nested", seed=seed, size=7, density=density)
    naive = compose(BATAX_NESTED.program, catalog.mappings())
    env = catalog.globals()
    reference = evaluate(naive, env)
    fused = fuse(naive)
    factorized = factorize(naive)
    both = factorize(fuse(naive))
    assert values_equal(evaluate(fused, env), reference)
    assert values_equal(evaluate(factorized, env), reference)
    assert values_equal(evaluate(both, env), reference)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_mmm_with_trie_storage(seed):
    a = random_sparse_matrix(6, 5, 0.4, seed=seed)
    b = random_sparse_matrix(5, 4, 0.4, seed=seed + 1)
    catalog = Catalog()
    catalog.add(TrieFormat.from_dense("A", a))
    catalog.add(CSRFormat.from_dense("B", b))
    naive = compose(MMM.program, catalog.mappings())
    env = catalog.globals()
    reference = evaluate(naive, env)
    for name, plan in candidate_plans(naive).items():
        assert values_equal(evaluate(plan, env), reference), name


def test_fused_factorized_batax_matches_paper_shape():
    """The fully optimized BATAX plan hoists the k-sum out of the j-dictionary."""
    catalog = build_catalog("BATAX-nested")
    naive = compose(BATAX_NESTED.program, catalog.mappings())
    plan = strategies.greedy_optimize(naive)
    text = str(plan)
    # the plan iterates the CSR position arrays directly (fusion happened) ...
    assert "A_pos2" in text and "A_idx2" in text
    # ... and no longer mentions a materialized logical tensor A
    from repro.sdqlite.ast import symbols
    assert "A" not in symbols(plan)
