"""A streaming MTTKRP kept fresh by incremental view maintenance.

The MTTKRP ``Q(i, j) = Σ_kl A(i,k,l) · B(k,j) · C(l,j)`` is the paper's
running example — and in streaming settings (new interactions arriving in a
tensor of user × item × time events) the tensor changes by a handful of
entries per tick while the factor matrices stay put.  Re-running the whole
kernel per tick wastes everything; this example registers it as a
materialized view (``docs/ivm.md``) and feeds a stream of sparse updates
through ``Server.update``, printing what the delta path costs versus full
re-execution, then verifies both agree exactly.

Run with::

    python examples/streaming_mttkrp.py
"""

import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.data.frostt import load_tensor
from repro.data.synthetic import random_sparse_matrix
from repro.kernels import MTTKRP
from repro.serving import Server
from repro.storage import Catalog, CSCFormat, CSFFormat, CSRFormat


def main() -> None:
    coords, values, dims = load_tensor("Facebook", scale=48)
    rank = 8
    b = random_sparse_matrix(dims[1], rank, 2.0 ** -4, seed=10)
    c = random_sparse_matrix(dims[2], rank, 2.0 ** -4, seed=11)

    server = Server(
        Catalog()
        .add(CSFFormat.from_coo("A", coords, values, dims))
        .add(CSRFormat.from_dense("B", b))
        .add(CSCFormat.from_dense("C", c)))
    view = server.create_view("mttkrp", MTTKRP.source,
                              dense_shape=(dims[0], rank))
    print(f"A: {dims} with {len(values)} nonzeros; factors {dims[1]}x{rank}, "
          f"{dims[2]}x{rank}")
    print("materialized:", MTTKRP.source.strip())
    print()

    # The stream: each tick adds a few new events to A.
    rng = np.random.default_rng(7)
    for tick in range(5):
        n = int(rng.integers(2, 6))
        delta_coords = np.column_stack(
            [rng.integers(0, extent, size=n) for extent in dims])
        delta_values = rng.random(n).round(3)
        start = time.perf_counter()
        server.update("A", delta_coords, delta_values)
        elapsed = (time.perf_counter() - start) * 1e3
        how = "delta" if view.delta_refreshes else "full "
        print(f"tick {tick}: +{n} entries -> maintained ({how}) "
              f"in {elapsed:7.2f} ms")

    maintained = view.value()

    start = time.perf_counter()
    recomputed = server.session().prepare(
        MTTKRP.source, dense_shape=(dims[0], rank)).execute()
    full_ms = (time.perf_counter() - start) * 1e3
    print(f"\nfull re-execution for comparison: {full_ms:7.2f} ms")

    assert np.allclose(maintained, recomputed)
    print("maintained view == full re-execution: OK")

    stats = server.stats.snapshot()
    print(f"maintenance: {stats['delta_executions']} delta, "
          f"{stats['full_refreshes']} full, "
          f"mean {stats['maintenance_mean_ms']:.2f} ms")
    server.close()


if __name__ == "__main__":
    main()
