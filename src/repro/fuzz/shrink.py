"""Delta-debugging shrinker for divergent fuzz cases.

A raw divergence from :func:`repro.fuzz.oracle.campaign` is rarely readable:
a 40-node program over three tensors in exotic formats.  This module
minimizes it while preserving the failure, using the oracle itself as the
test predicate — a candidate reduction is kept only if the *shrunk* case
still diverges under the same (engine, backend) configuration (a reduction
that makes the reference fail, e.g. by unbinding a variable, self-rejects).

Passes, iterated to a fixed point under a global evaluation budget:

1. **program** — every subexpression is tentatively replaced by one of its
   own children (hoisting) or by ``0`` / ``1``;
2. **tensor data** — whole tensors zeroed, then single non-zero entries
   zeroed, then surviving values snapped to ``1.0``;
3. **scalars** — snapped to ``1.0`` / ``0.0``;
4. **formats** — swapped to ``dense`` (keeping the failure format-specific
   only when it really is);
5. **garbage collection** — tensors and scalars the program no longer
   references are dropped.

The result plugs into :func:`repro.fuzz.corpus.write_corpus_case`, which
serializes it as a self-contained, replayable regression test.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..sdqlite.ast import Const, Expr, children, node_count, rebuild, symbols
from .oracle import CaseSkipped, Divergence, FuzzCase, OracleConfig, check_case


def narrow_config(config: OracleConfig, divergence: Divergence) -> OracleConfig:
    """Restrict ``config`` to the reference plus the one diverging pair."""
    methods = ("unoptimized",)
    if divergence.method != "unoptimized":
        methods = methods + (divergence.method,)
    return OracleConfig(backends=(divergence.backend,), methods=methods,
                        optimizer_options=dict(config.optimizer_options),
                        rel_tol=config.rel_tol, abs_tol=config.abs_tol)


# ---------------------------------------------------------------------------
# AST surgery
# ---------------------------------------------------------------------------


def _paths(expr: Expr, prefix: tuple[int, ...] = ()) -> list[tuple[tuple[int, ...], Expr]]:
    """Breadth-ish enumeration of (path, node); shallow nodes first."""
    out = [(prefix, expr)]
    for index, child in enumerate(children(expr)):
        out.extend(_paths(child, prefix + (index,)))
    out.sort(key=lambda item: len(item[0]))
    return out


def _replace_at(expr: Expr, path: tuple[int, ...], replacement: Expr) -> Expr:
    if not path:
        return replacement
    kids = list(children(expr))
    kids[path[0]] = _replace_at(kids[path[0]], path[1:], replacement)
    return rebuild(expr, kids)


# ---------------------------------------------------------------------------
# the shrinking loop
# ---------------------------------------------------------------------------


class _Budget:
    def __init__(self, evaluations: int):
        self.remaining = evaluations

    def spend(self) -> bool:
        if self.remaining <= 0:
            return False
        self.remaining -= 1
        return True


def _still_fails(case: FuzzCase, config: OracleConfig, budget: _Budget) -> bool:
    if not budget.spend():
        return False
    try:
        return check_case(case, config) is not None
    except CaseSkipped:
        return False


def _shrink_program(case: FuzzCase, fails: Callable[[FuzzCase], bool]) -> FuzzCase:
    changed = True
    while changed:
        changed = False
        for path, node in _paths(case.program):
            candidates: list[Expr] = [child for child in children(node)]
            if not isinstance(node, Const):
                candidates.extend([Const(0), Const(1)])
            for candidate in candidates:
                if candidate == node:
                    continue
                shrunk = _replace_at(case.program, path, candidate)
                if node_count(shrunk) >= node_count(case.program):
                    continue
                attempt = case.replace(program=shrunk)
                if fails(attempt):
                    case = attempt
                    changed = True
                    break
            if changed:
                break
    return case


def _shrink_tensors(case: FuzzCase, fails: Callable[[FuzzCase], bool]) -> FuzzCase:
    for name in list(case.tensors):
        array = case.tensors[name]
        zeroed = case.replace(tensors={**case.tensors,
                                       name: np.zeros_like(array)})
        if fails(zeroed):
            case = zeroed
            continue
        # Zero out individual entries, then snap survivors to 1.0.
        current = np.array(array, dtype=np.float64)
        for coordinate in np.argwhere(current != 0)[:32]:
            attempt_array = np.array(current)
            attempt_array[tuple(coordinate)] = 0.0
            attempt = case.replace(tensors={**case.tensors, name: attempt_array})
            if fails(attempt):
                current = attempt_array
                case = attempt
        ones = np.array(current)
        ones[ones != 0] = 1.0
        attempt = case.replace(tensors={**case.tensors, name: ones})
        if fails(attempt):
            case = attempt
    return case


def _shrink_scalars(case: FuzzCase, fails: Callable[[FuzzCase], bool]) -> FuzzCase:
    for name in list(case.scalars):
        for value in (1.0, 0.0):
            if case.scalars[name] == value:
                continue
            attempt = case.replace(scalars={**case.scalars, name: value})
            if fails(attempt):
                case = attempt
                break
    return case


def _shrink_formats(case: FuzzCase, fails: Callable[[FuzzCase], bool]) -> FuzzCase:
    for name, fmt in list(case.formats.items()):
        if fmt == "dense":
            continue
        attempt = case.replace(formats={**case.formats, name: "dense"})
        if fails(attempt):
            case = attempt
    return case


def _drop_unreferenced(case: FuzzCase, fails: Callable[[FuzzCase], bool]) -> FuzzCase:
    referenced = symbols(case.program)
    tensors = {name: array for name, array in case.tensors.items()
               if name in referenced}
    scalars = {name: value for name, value in case.scalars.items()
               if name in referenced}
    if len(tensors) == len(case.tensors) and len(scalars) == len(case.scalars):
        return case
    attempt = case.replace(tensors=tensors,
                           formats={name: case.formats[name] for name in tensors},
                           scalars=scalars)
    return attempt if fails(attempt) else case


def shrink_case(divergence: Divergence, config: OracleConfig | None = None, *,
                max_evaluations: int = 600) -> Divergence:
    """Minimize a divergent case; returns the re-checked, shrunk divergence.

    The predicate is "still diverges under the original failing
    (engine, backend) pair"; ``max_evaluations`` bounds the number of oracle
    executions spent.  If shrinking loses the failure (e.g. a flaky budget
    exhaustion), the original divergence is returned unchanged.
    """
    narrow = narrow_config(config or OracleConfig(), divergence)
    budget = _Budget(max_evaluations)
    fails = lambda case: _still_fails(case, narrow, budget)  # noqa: E731

    case = divergence.case
    previous_size = None
    while previous_size != node_count(case.program):
        previous_size = node_count(case.program)
        case = _shrink_program(case, fails)
        case = _shrink_tensors(case, fails)
        case = _shrink_scalars(case, fails)
        case = _shrink_formats(case, fails)
        case = _drop_unreferenced(case, fails)
        if budget.remaining <= 0:
            break
    try:
        shrunk = check_case(case, narrow)
    except CaseSkipped:
        shrunk = None
    return shrunk if shrunk is not None else divergence
