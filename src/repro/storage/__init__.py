"""Physical data model, flexible storage formats, and Tensor Storage Mappings."""

from .catalog import Catalog, CatalogSnapshot
from .convert import (
    ALL_FORMATS,
    candidate_formats,
    coo_arrays,
    parse_format_spec,
    reformat,
    reformat_in_catalog,
)
from .formats import (
    COOFormat,
    CSCFormat,
    CSFFormat,
    CSRFormat,
    DCSRFormat,
    DenseFormat,
    DOKFormat,
    FORMATS,
    StorageFormat,
    TensorStats,
    TrieFormat,
    build_format,
    sum_duplicates,
)
from .physical import (
    KIND_ARRAY,
    KIND_HASH,
    KIND_SCALAR,
    KIND_TRIE,
    PhysicalArray,
    PhysicalHashMap,
    PhysicalScalar,
    PhysicalTrie,
    collection_kind,
)
from .sharded import (
    SHARDED_FORMATS,
    MemmapDenseFormat,
    ShardedCOOFormat,
    ShardedCSRFormat,
    ShardedFormat,
)
from .special import (
    SPECIAL_FORMATS,
    BandFormat,
    LowerTriangularFormat,
    ZOrderFormat,
    morton_index,
)

__all__ = [
    "Catalog", "CatalogSnapshot",
    "COOFormat", "CSCFormat", "CSFFormat", "CSRFormat", "DCSRFormat", "DenseFormat",
    "DOKFormat", "FORMATS", "StorageFormat", "TensorStats", "TrieFormat", "build_format",
    "sum_duplicates", "ALL_FORMATS", "SPECIAL_FORMATS",
    "candidate_formats", "coo_arrays", "parse_format_spec", "reformat",
    "reformat_in_catalog",
    "SHARDED_FORMATS", "MemmapDenseFormat", "ShardedCOOFormat", "ShardedCSRFormat",
    "ShardedFormat",
    "KIND_ARRAY", "KIND_HASH", "KIND_SCALAR", "KIND_TRIE",
    "PhysicalArray", "PhysicalHashMap", "PhysicalScalar", "PhysicalTrie", "collection_kind",
    "BandFormat", "LowerTriangularFormat", "ZOrderFormat", "morton_index",
]
