"""Workload-driven storage format advisor.

The paper's premise (Sec. 4–5) is that tensor-program performance hinges on
*flexible storage*: the same program can be orders of magnitude faster or
slower depending on the formats the data administrator picked.  The paper's
cost model (Sec. 5.5–5.7) already estimates the cost of an optimized plan
*for a given storage configuration* — this package closes the loop it leaves
open by searching **over** configurations: given a catalog and a workload of
SDQLite programs (optionally weighted), the :class:`Advisor` enumerates the
storage formats that can legally hold each tensor
(:meth:`repro.storage.StorageFormat.candidates_for`), estimates every
program's optimized plan cost under each candidate configuration
(:meth:`repro.core.statistics.Statistics.with_formats` + the two-stage
optimizer), and returns a ranked :class:`Recommendation` that
:meth:`repro.session.Session.apply_recommendation` executes in place via
:func:`repro.storage.convert.reformat` (bumping catalog epochs, so prepared
statements transparently re-prepare).

Entry points, cheapest first:

* :func:`repro.storel.advise` — one-shot wrapper over a throwaway session;
* :class:`Advisor` — reusable, holds the conversion/costing caches;
* ``Advisor.advise(..., measure=True)`` — additionally validates the top-k
  estimated configurations against real executions on the vectorized
  backend and ranks by measured time.

See ``docs/advisor.md`` for a walkthrough and
``benchmarks/bench_advisor.py`` for advisor-picked vs. hand-picked formats
on the Table-3 format-sensitivity workloads.
"""

from .advisor import Advisor, Candidate, Recommendation, WorkloadQuery, as_workload
from .online import OnlineAdvisor

__all__ = ["Advisor", "Candidate", "OnlineAdvisor", "Recommendation",
           "WorkloadQuery", "as_workload"]
