"""Term-level rewrite transformations.

These functions implement the binder-crossing rewrites of Fig. 3 directly on
De Bruijn terms: loop factorization (D2–D4), loop fusion (F1–F3), merge
introduction (F4), condition hoisting and ``let`` inlining.  They are used in
two places:

* as the *appliers* of the dynamic e-graph rules (:mod:`repro.core.rules`),
  where each is applied to a concrete representative term of the matched
  e-node, and
* as deterministic rewrite *strategies* (:func:`fuse`, :func:`factorize`,
  :func:`greedy_optimize`) that generate candidate plans directly.  The
  strategies also power the rule-ablation experiment of Fig. 9 and the
  Taco-like baseline (fusion without factorization).

Every transformation returns a new term, or ``None`` when it does not apply;
all of them preserve the semantics of the input term (checked extensively by
the property-based tests).
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

from ..sdqlite.ast import (
    Add,
    Cmp,
    Const,
    DictExpr,
    Expr,
    Get,
    IfThen,
    Idx,
    Let,
    Merge,
    Mul,
    Neg,
    RangeExpr,
    SliceGet,
    Sub,
    Sum,
    Sym,
    binder_arities,
    children,
    postorder,
    rebuild,
)
from ..sdqlite.debruijn import free_indices, shift, substitute, uses_indices

Transform = Callable[[Expr], "Expr | None"]


# ---------------------------------------------------------------------------
# small helpers
# ---------------------------------------------------------------------------


def _flatten_product(expr: Expr) -> list[Expr]:
    """Flatten a tree of ``Mul`` into its list of factors."""
    if isinstance(expr, Mul):
        return _flatten_product(expr.left) + _flatten_product(expr.right)
    return [expr]


def _product(factors: Sequence[Expr]) -> Expr:
    out = factors[0]
    for factor in factors[1:]:
        out = Mul(out, factor)
    return out


def remap_free(expr: Expr, mapping: Callable[[int], int], cutoff: int = 0) -> Expr:
    """Apply ``mapping`` to every free index (expressed relative to the root)."""
    if isinstance(expr, Idx):
        if expr.index >= cutoff:
            return Idx(mapping(expr.index - cutoff) + cutoff)
        return expr
    kids = children(expr)
    if not kids:
        return expr
    arities = binder_arities(expr)
    return rebuild(expr, [remap_free(child, mapping, cutoff + arity)
                          for child, arity in zip(kids, arities)])


def is_strict_in(expr: Expr, index: int) -> bool:
    """True when ``expr`` is guaranteed to be zero whenever ``%index`` is zero.

    The fusion rules F1–F3 replace "iterate only the stored entries" by
    "iterate all candidates and bind the (possibly missing, hence zero)
    value"; this is only an equivalence when the body annihilates on a zero
    value.  The check is conservative (multiplicative positions only).
    """
    if isinstance(expr, Idx):
        return expr.index == index
    if isinstance(expr, Mul):
        return is_strict_in(expr.left, index) or is_strict_in(expr.right, index)
    if isinstance(expr, (Add, Sub)):
        return is_strict_in(expr.left, index) and is_strict_in(expr.right, index)
    if isinstance(expr, Neg):
        return is_strict_in(expr.operand, index)
    if isinstance(expr, DictExpr):
        return is_strict_in(expr.value, index)
    if isinstance(expr, IfThen):
        return is_strict_in(expr.then, index)
    if isinstance(expr, Let):
        return is_strict_in(expr.body, index + 1) or (
            is_strict_in(expr.value, index) and is_strict_in(expr.body, 0)
        )
    if isinstance(expr, Sum):
        return is_strict_in(expr.body, index + 2) or is_strict_in(expr.source, index)
    if isinstance(expr, Merge):
        return is_strict_in(expr.body, index + 3)
    if isinstance(expr, Get):
        return is_strict_in(expr.target, index)
    if isinstance(expr, SliceGet):
        return is_strict_in(expr.target, index)
    return False


def value_rank_lb(expr: Expr, env: tuple[int, ...] = (),
                  symbol_ranks: "Mapping[str, int] | None" = None) -> int:
    """A proven *lower bound* on the dictionary nesting rank of ``expr``.

    0 means "no proof" — the expression may still be a scalar or an unknown
    leaf (symbol without an entry in ``symbol_ranks``, out-of-scope
    variable).  ``env[i]`` carries the proven rank of the binder behind
    ``Idx(i)``: a ``sum`` over a rank-``r`` source binds a rank-``r-1``
    value, so ``sum(<k, v> in T) v`` over a matrix is provably rank 1.
    The factorization guards use this to keep dictionary-valued factors from
    being moved across ``{ key -> ... }`` constructors, where scalar scaling
    silently becomes key intersection (found by the differential fuzzer).
    """
    if isinstance(expr, DictExpr):
        return 1 + value_rank_lb(expr.value, env, symbol_ranks)
    if isinstance(expr, RangeExpr):
        return 1
    if isinstance(expr, SliceGet):
        return value_rank_lb(expr.target, env, symbol_ranks)
    if isinstance(expr, Merge):
        return value_rank_lb(expr.body, (0, 0, 0) + env, symbol_ranks)
    if isinstance(expr, Sum):
        source_rank = value_rank_lb(expr.source, env, symbol_ranks)
        body_env = (max(source_rank - 1, 0), 0) + env
        return value_rank_lb(expr.body, body_env, symbol_ranks)
    if isinstance(expr, IfThen):
        return value_rank_lb(expr.then, env, symbol_ranks)
    if isinstance(expr, Let):
        body_env = (value_rank_lb(expr.value, env, symbol_ranks),) + env
        return value_rank_lb(expr.body, body_env, symbol_ranks)
    if isinstance(expr, (Add, Sub, Mul)):
        # Well-typed additions have equal ranks; multiplication overloads
        # scalar x dict, so the higher proven bound applies either way.
        return max(value_rank_lb(expr.left, env, symbol_ranks),
                   value_rank_lb(expr.right, env, symbol_ranks))
    if isinstance(expr, Neg):
        return value_rank_lb(expr.operand, env, symbol_ranks)
    if isinstance(expr, Get):
        return max(value_rank_lb(expr.target, env, symbol_ranks) - 1, 0)
    if isinstance(expr, Idx):
        return env[expr.index] if expr.index < len(env) else 0
    if isinstance(expr, Sym) and symbol_ranks:
        return symbol_ranks.get(expr.name, 0)
    return 0


def is_collection_producer(expr: Expr, depth: int = 0,
                           env: tuple[int, ...] = (),
                           symbol_ranks: "Mapping[str, int] | None" = None) -> bool:
    """True when ``expr``, after ``depth`` more lookups, is *provably* a dictionary."""
    return value_rank_lb(expr, env, symbol_ranks) > depth


# ---------------------------------------------------------------------------
# Factorization (distributivity) — rules D2, D3, D4 of Fig. 3
# ---------------------------------------------------------------------------


def hoist_factor(term: Expr) -> Expr | None:
    """D2/D3: pull loop-invariant factors out of a ``sum``.

    ``sum(<k,v> in e1) a * b``, where ``a`` does not mention ``k``/``v``,
    becomes ``a' * sum(<k,v> in e1) b``.
    """
    if not isinstance(term, Sum):
        return None
    factors = _flatten_product(term.body)
    if len(factors) < 2:
        return None
    invariant = [f for f in factors if not uses_indices(f, (0, 1))]
    dependent = [f for f in factors if uses_indices(f, (0, 1))]
    if not invariant or not dependent:
        return None
    # Summing is linear in each factor only when the invariant part is scalar;
    # hoisting a dictionary-valued factor out of the sum would change the
    # meaning of the element-wise product, so only scalar-looking factors move.
    hoisted = _product([shift(f, -2) for f in invariant])
    remaining = _product(dependent)
    return Mul(hoisted, Sum(term.source, remaining,
                            key_name=term.key_name, val_name=term.val_name))


def hoist_dict(term: Expr) -> Expr | None:
    """D4: pull a dictionary construction with a loop-invariant key out of a sum.

    ``sum(<k,v> in e1) { j -> e }`` with ``j`` independent of ``k, v`` becomes
    ``{ j' -> sum(<k,v> in e1) e }``.
    """
    if not isinstance(term, Sum) or not isinstance(term.body, DictExpr):
        return None
    inner = term.body
    if uses_indices(inner.key, (0, 1)):
        return None
    new_key = shift(inner.key, -2)
    new_sum = Sum(term.source, inner.value, key_name=term.key_name, val_name=term.val_name)
    # The hoisted key is now a single key, so the @unique assertion is dropped.
    return DictExpr(new_key, new_sum, annot=inner.annot, unique=False)


def hoist_if(term: Expr) -> Expr | None:
    """Pull a loop-invariant condition out of a sum:
    ``sum(<k,v> in e1) if (c) then e`` → ``if (c') then sum(<k,v> in e1) e``."""
    if not isinstance(term, Sum) or not isinstance(term.body, IfThen):
        return None
    inner = term.body
    if uses_indices(inner.cond, (0, 1)):
        return None
    new_cond = shift(inner.cond, -2)
    return IfThen(new_cond, Sum(term.source, inner.then,
                                key_name=term.key_name, val_name=term.val_name))


def _movable_factor(factor: Expr, env: "tuple[int, ...] | None",
                    symbol_ranks: "Mapping[str, int] | None") -> bool:
    """May ``factor`` move across a ``{ key -> ... }`` constructor?

    Only scalar factors may — for a dictionary the move turns scaling into
    key intersection.  With a binder environment (``env`` from a root walk)
    the rank analysis covers bound variables; without one (``env is None``,
    the transform ran on an e-graph fragment whose enclosing binders are
    unknown) a factor referencing free variables cannot be judged at all and
    is kept in place.
    """
    known_env = env if env is not None else ()
    if is_collection_producer(factor, 0, known_env, symbol_ranks):
        return False
    return env is not None or not free_indices(factor)


def push_factor_into_dict(term: Expr, env: "tuple[int, ...] | None" = None,
                          symbol_ranks: "Mapping[str, int] | None" = None) -> Expr | None:
    """A2/A3 as a term rewrite: ``a * { k -> e }`` → ``{ k -> a * e }``."""
    if isinstance(term, Mul):
        left, right = term.left, term.right
        if isinstance(right, DictExpr) and _movable_factor(left, env, symbol_ranks):
            return DictExpr(right.key, Mul(left, right.value),
                            annot=right.annot, unique=right.unique)
        if isinstance(left, DictExpr) and _movable_factor(right, env, symbol_ranks):
            return DictExpr(left.key, Mul(left.value, right),
                            annot=left.annot, unique=left.unique)
    return None


push_factor_into_dict.wants_env = True


def factor_out_of_dict(term: Expr, env: "tuple[int, ...] | None" = None,
                       symbol_ranks: "Mapping[str, int] | None" = None) -> Expr | None:
    """A2/A3 in the hoisting direction: ``{ k -> a * e }`` → ``a * { k -> e }``
    for factors ``a`` that are scalar-valued sums (so they can later be hoisted
    out of an enclosing loop and materialized once).  See :func:`_movable_factor`
    for the scalarness guard."""
    if not isinstance(term, DictExpr) or not isinstance(term.value, Mul):
        return None
    factors = _flatten_product(term.value)
    liftable = [f for f in factors if isinstance(f, (Sum, Let))
                and _movable_factor(f, env, symbol_ranks)]
    rest = [f for f in factors if f not in liftable]
    if not liftable or not rest:
        return None
    return Mul(_product(liftable),
               DictExpr(term.key, _product(rest), annot=term.annot, unique=term.unique))


factor_out_of_dict.wants_env = True


# ---------------------------------------------------------------------------
# Fusion — rules F1, F2, F3 of Fig. 3
# ---------------------------------------------------------------------------


def sum_to_lookup(term: Expr) -> Expr | None:
    """F1: replace an iteration filtered on its key by a direct lookup.

    ``sum(<k,v> in e1) if (k == j) then e3`` (``j`` loop-invariant) becomes
    ``let v = e1(j) in e3[k := j]``.
    """
    if not isinstance(term, Sum) or not isinstance(term.body, IfThen):
        return None
    cond = term.body.cond
    if not (isinstance(cond, Cmp) and cond.op == "=="):
        return None
    if cond.left == Idx(1) and not uses_indices(cond.right, (0, 1)):
        key_expr = cond.right
    elif cond.right == Idx(1) and not uses_indices(cond.left, (0, 1)):
        key_expr = cond.left
    else:
        return None
    body = term.body.then
    if not is_strict_in(body, 0):
        # Replacing the iteration by a lookup is only sound when a missing key
        # (value 0) makes the body vanish.
        return None
    key_outside = shift(key_expr, -2)
    # Replace the key variable %1 by the (loop-invariant) key expression and
    # drop the key binder; the value binder %0 becomes the let binding.
    new_body = substitute(body, 1, key_outside)
    return Let(Get(term.source, key_outside), new_body, name=term.val_name)


def fuse_sum_of_sum(term: Expr) -> Expr | None:
    """F2/F3: fuse two nested loops when the inner one builds singleton dictionaries.

    * F2: ``sum(<k1,v1> in (sum(<k2,v2> in e1) {k2 -> e2})) e3``
      becomes ``sum(<k2,v2> in e1) let v1 = e2 in e3[k1 := k2]``.
    * F3: ``sum(<k1,v1> in (sum(<k2,v2> in e1) {@unique e2 -> e3})) e4``
      becomes ``sum(<k2,v2> in e1) let k1 = e2 in let v1 = e3 in e4``.
    """
    if not isinstance(term, Sum) or not isinstance(term.source, Sum):
        return None
    inner = term.source
    if not isinstance(inner.body, DictExpr):
        return None
    dict_expr = inner.body
    outer_body = term.body
    if not is_strict_in(outer_body, 0):
        # The inner sum drops entries whose value is zero; the fused loop
        # visits them, so the outer body must annihilate on a zero value.
        return None

    if dict_expr.key == Idx(1):
        # F2 — the produced keys are exactly the keys of e1.
        # New context for the outer body: sum binds (k2=%2', v2=%1')... after the
        # let it is (k2=%2, v2=%1, v1=%0); old context was (k1=%1, v1=%0).
        def mapping(index: int) -> int:
            if index == 0:      # v1 -> let binding
                return 0
            if index == 1:      # k1 -> k2
                return 2
            return index + 1    # outer references: one extra binder

        new_outer = remap_free(outer_body, mapping)
        return Sum(inner.source, Let(dict_expr.value, new_outer, name=term.val_name),
                   key_name=inner.key_name, val_name=inner.val_name)

    if dict_expr.unique:
        # F3 — the produced keys are asserted distinct by @unique.
        def mapping(index: int) -> int:
            if index in (0, 1):  # v1, k1 keep their positions (now let-bound)
                return index
            return index + 2     # outer references: two extra binders

        new_outer = remap_free(outer_body, mapping)
        value_under_let = shift(dict_expr.value, 1)
        fused = Let(dict_expr.key,
                    Let(value_under_let, new_outer, name=term.val_name),
                    name=term.key_name)
        return Sum(inner.source, fused, key_name=inner.key_name, val_name=inner.val_name)

    return None


def introduce_merge(term: Expr) -> Expr | None:
    """F4: turn a nested value-equality join into a sort-merge style ``merge``.

    ``sum(<k1,v1> in e1) sum(<k2,v2> in e2) if (v1 == v2) then e3`` (with
    ``e2`` independent of ``k1, v1``) becomes
    ``merge(<k1,k2,v> in <e1,e2>) let v2 = v in e3``.
    """
    if not isinstance(term, Sum) or not isinstance(term.body, Sum):
        return None
    inner = term.body
    if uses_indices(inner.source, (0, 1)):
        return None
    if not isinstance(inner.body, IfThen):
        return None
    cond = inner.body.cond
    if not (isinstance(cond, Cmp) and cond.op == "=="):
        return None
    pair = {cond.left, cond.right}
    if pair != {Idx(0), Idx(2)}:
        return None
    body = inner.body.then

    # Old context (innermost first): v2=%0, k2=%1, v1=%2, k1=%3.
    # New context:                   v2=%0 (let), v=%1, k2=%2, k1=%3.
    def mapping(index: int) -> int:
        if index == 0:
            return 0
        if index == 1:
            return 2
        if index == 2:
            return 1
        return index

    new_body = remap_free(body, mapping)
    return Merge(term.source, shift(inner.source, -2),
                 Let(Idx(0), new_body, name=inner.val_name),
                 key1_name=term.key_name, key2_name=inner.key_name, val_name="_shared")


def lookup_of_range_sum(term: Expr) -> Expr | None:
    """Turn a lookup into a range-built dictionary into a guarded direct access.

    ``(sum(<k,_> in lo:hi) { k -> e })(j)`` becomes
    ``if (lo <= j && j < hi) then e[k := j]``.  This is what makes lookups
    like ``X(k)`` — composed with a dense storage mapping — compile to a
    direct array access instead of re-materializing the mapping.
    """
    if not isinstance(term, Get) or not isinstance(term.target, Sum):
        return None
    inner = term.target
    if not isinstance(inner.source, RangeExpr) or not isinstance(inner.body, DictExpr):
        return None
    if inner.body.key != Idx(1):
        return None
    key = term.key
    # For a range source the bound value equals the bound key, so both binders
    # collapse onto the lookup key: first identify the value binder with the
    # key binder, then replace the key binder by the lookup key expression.
    value = substitute(inner.body.value, 0, Idx(0))
    value = substitute(value, 0, key)
    from ..sdqlite.ast import And

    guard = And(Cmp("<=", inner.source.lo, key), Cmp("<", key, inner.source.hi))
    return IfThen(guard, value)


def _flatten_add(term: Expr) -> list[Expr]:
    """The addends of a (left- or right-nested) ``+`` chain."""
    if isinstance(term, Add):
        return _flatten_add(term.left) + _flatten_add(term.right)
    return [term]


def _shard_prefixes(term: Expr) -> set[tuple[str, int]]:
    """All ``(tensor, shard index)`` pairs of shard-local symbols in ``term``.

    Shard-local physical symbols are named ``{tensor}__s{i}_{suffix}`` by the
    sharded storage formats (:data:`repro.storage.sharded.SHARD_SYMBOL_RE`).
    """
    from ..storage.sharded import SHARD_SYMBOL_RE

    prefixes: set[tuple[str, int]] = set()
    for node in postorder(term):
        if isinstance(node, Sym):
            match = SHARD_SYMBOL_RE.match(node.name)
            if match:
                prefixes.add((match.group(1), int(match.group(2))))
    return prefixes


def split_sharded_sum(term: Expr) -> Expr | None:
    """``sum`` over a ``+`` chain of per-shard mappings → ``+`` of per-shard sums.

    ``sum(<k,v> in (m0 + m1 + ...)) body`` becomes
    ``sum(<k,v> in m0) body + sum(<k,v> in m1) body + ...`` — the
    sum-over-shards decomposition the semiring guarantees, and the rewrite
    that makes sharded execution *stream*: each addend materializes (or, after
    fusion, never materializes) one shard at a time instead of ``v_add``-ing
    the whole tensor into memory first.

    Splitting a sum over a general ``+`` is **unsound** when addends share
    keys (``body`` need not be linear in the bound value), so the rewrite
    only fires when every addend is a shard term of one and the same tensor:
    each non-zero addend references shard symbols of exactly one
    ``(tensor, index)`` prefix, all addends agree on the tensor, and all
    shard indices are pairwise distinct — row-range shards of one tensor
    cover disjoint key ranges by construction.
    """
    if not isinstance(term, Sum) or not isinstance(term.source, Add):
        return None
    parts: list[Expr] = []
    bases: set[str] = set()
    seen_indices: set[int] = set()
    for addend in _flatten_add(term.source):
        if addend == Const(0):
            continue
        prefixes = _shard_prefixes(addend)
        if len(prefixes) != 1:
            return None
        (base, index), = prefixes
        bases.add(base)
        if index in seen_indices:
            return None
        seen_indices.add(index)
        parts.append(addend)
    if len(parts) < 2 or len(bases) != 1:
        return None
    result: Expr = Sum(parts[0], term.body,
                       key_name=term.key_name, val_name=term.val_name)
    for part in parts[1:]:
        result = Add(result, Sum(part, term.body,
                                 key_name=term.key_name, val_name=term.val_name))
    return result


def lookup_over_add(term: Expr) -> Expr | None:
    """``(a + b)(k)`` → ``a(k) + b(k)`` on sharded mappings.

    Lookup distributes over semiring addition unconditionally
    (``lookup(v_add(a, b), k) == v_add(lookup(a, k), lookup(b, k))``), but
    the rewrite is gated on the target containing shard symbols so plans for
    non-sharded catalogs stay byte-identical.  On sharded tensors it keeps a
    point access like ``A(i)`` from ``v_add``-materializing the whole
    tensor; each per-shard lookup then simplifies further through
    :func:`lookup_of_range_sum`.
    """
    if not isinstance(term, Get) or not isinstance(term.target, Add):
        return None
    if not _shard_prefixes(term.target):
        return None
    return Add(Get(term.target.left, term.key),
               Get(term.target.right, term.key))


def hoist_let_from_source(term: Expr) -> Expr | None:
    """``sum(<k,v> in (let x = e1 in e2)) e3`` → ``let x = e1 in sum(<k,v> in e2) e3``."""
    if not isinstance(term, Sum) or not isinstance(term.source, Let):
        return None
    inner = term.source
    new_body = shift(term.body, 1, 2)
    return Let(inner.value,
               Sum(inner.body, new_body, key_name=term.key_name, val_name=term.val_name),
               name=inner.name)


def inline_let(term: Expr) -> Expr | None:
    """``let x = e1 in e2`` → ``e2[e1/x]`` (beta reduction)."""
    if not isinstance(term, Let):
        return None
    return substitute(term.body, 0, term.value)


def inline_collection_lets(term: Expr) -> Expr | None:
    """Inline ``let`` bindings whose value constructs a collection.

    Materialized intermediate collections are what the fusion rules remove;
    inlining them exposes the ``sum``-over-``sum`` shape that F2/F3 match.
    Scalar ``let`` bindings are kept (they are cheap and avoid recomputation).
    """
    if isinstance(term, Let) and is_collection_producer(term.value):
        return substitute(term.body, 0, term.value)
    return None


# ---------------------------------------------------------------------------
# Simplifications (term level)
# ---------------------------------------------------------------------------


def simplify_node(term: Expr) -> Expr | None:
    """Local algebraic simplifications (rules L1–L6, T4, if-elimination)."""
    if isinstance(term, Add):
        if term.left == Const(0):
            return term.right
        if term.right == Const(0):
            return term.left
    if isinstance(term, Mul):
        if term.left == Const(0) or term.right == Const(0):
            return Const(0)
        if term.left == Const(1):
            return term.right
        if term.right == Const(1):
            return term.left
    if isinstance(term, Sub):
        if term.right == Const(0):
            return term.left
        if term.left == term.right:
            return Const(0)
    if isinstance(term, IfThen):
        if term.cond == Const(True):
            return term.then
        if term.cond == Const(False):
            return Const(0)
        if isinstance(term.cond, Cmp) and term.cond.op == "==" and term.cond.left == term.cond.right:
            return term.then
    if isinstance(term, Sum) and term.body == Const(0):
        return Const(0)
    if isinstance(term, Get) and isinstance(term.target, RangeExpr):
        # T4: looking up a range returns the key itself (guarded by bounds).
        return IfThen(
            Cmp("<=", term.target.lo, term.key),
            IfThen(Cmp("<", term.key, term.target.hi), term.key),
        )
    return None


# ---------------------------------------------------------------------------
# Strategies: deterministic passes built from the transformations above
# ---------------------------------------------------------------------------


def _child_env(node: Expr, index: int, value_child: Expr,
               env: tuple[int, ...],
               symbol_ranks: "Mapping[str, int] | None") -> tuple[int, ...]:
    """The binder environment seen by child ``index`` of ``node``.

    ``value_child`` is the (possibly already rewritten) child whose rank
    determines the bound value: the source of a ``Sum``, the value of a
    ``Let``.
    """
    if isinstance(node, Sum) and index == 1:
        source_rank = value_rank_lb(value_child, env, symbol_ranks)
        return (max(source_rank - 1, 0), 0) + env
    if isinstance(node, Let) and index == 1:
        return (value_rank_lb(value_child, env, symbol_ranks),) + env
    if isinstance(node, Merge) and index == 2:
        return (0, 0, 0) + env
    return env


def rewrite_everywhere(term: Expr, transforms: Iterable[Transform],
                       max_passes: int = 20,
                       symbol_ranks: "Mapping[str, int] | None" = None) -> Expr:
    """Apply the transformations bottom-up anywhere they match, to fixpoint.

    A binder environment of proven value ranks (see :func:`value_rank_lb`)
    is maintained during the walk and handed to transforms that declare
    ``wants_env`` — the factor-moving rewrites, whose scalarness guards
    would otherwise be blind to dictionary-valued variables bound by
    *enclosing* loops.
    """
    transforms = list(transforms)

    def rewrite_once(node: Expr, env: tuple[int, ...]) -> tuple[Expr, bool]:
        changed = False
        kids = children(node)
        if kids:
            new_kids: list[Expr] = []
            for index, child in enumerate(kids):
                value_child = new_kids[0] if index > 0 else child
                child_env = _child_env(node, index, value_child, env, symbol_ranks)
                new_child, child_changed = rewrite_once(child, child_env)
                changed = changed or child_changed
                new_kids.append(new_child)
            if changed:
                # Only reallocate the spine when a child actually changed;
                # fixpoint passes over already-normalized plans then allocate
                # nothing (this runs once per candidate plan per optimize).
                node = rebuild(node, new_kids)
        for transform in transforms:
            if getattr(transform, "wants_env", False):
                result = transform(node, env, symbol_ranks)
            else:
                result = transform(node)
            if result is not None and result != node:
                return result, True
        return node, changed

    current = term
    for _ in range(max_passes):
        current, changed = rewrite_once(current, ())
        if not changed:
            break
    return current


#: The fusion pipeline: what a Taco-like compiler achieves for a given format.
FUSION_TRANSFORMS: tuple[Transform, ...] = (
    inline_collection_lets,
    hoist_let_from_source,
    fuse_sum_of_sum,
    hoist_if,
    sum_to_lookup,
    lookup_of_range_sum,
    simplify_node,
)

#: The factorization pipeline: the cost-based rewrites Taco does not perform.
FACTORIZATION_TRANSFORMS: tuple[Transform, ...] = (
    hoist_dict,
    factor_out_of_dict,
    hoist_factor,
    hoist_if,
    simplify_node,
)


def fuse(term: Expr, max_passes: int = 30,
         symbol_ranks: "Mapping[str, int] | None" = None) -> Expr:
    """Fuse storage mappings into the program (loop fusion only, no factorization)."""
    return rewrite_everywhere(term, FUSION_TRANSFORMS, max_passes, symbol_ranks)


def factorize(term: Expr, max_passes: int = 30,
              symbol_ranks: "Mapping[str, int] | None" = None) -> Expr:
    """Apply the distributivity / factorization rewrites to fixpoint."""
    return rewrite_everywhere(term, FACTORIZATION_TRANSFORMS, max_passes, symbol_ranks)


def greedy_optimize(term: Expr, *, with_fusion: bool = True,
                    with_factorization: bool = True, with_merge: bool = False,
                    symbol_ranks: "Mapping[str, int] | None" = None) -> Expr:
    """The deterministic optimization pipeline used to seed the plan space.

    The combinations of the two flags correspond to the ablations of Fig. 9:
    neither (naive plan), fusion only (Taco-like), factorization only
    (unfused), or both (the plan STOREL's cost-based optimizer picks for
    sufficiently sparse data).
    """
    plan = term
    if with_factorization:
        plan = factorize(plan, symbol_ranks=symbol_ranks)
    if with_fusion:
        plan = fuse(plan, symbol_ranks=symbol_ranks)
    if with_factorization:
        plan = factorize(plan, symbol_ranks=symbol_ranks)
    if with_merge:
        plan = rewrite_everywhere(plan, (introduce_merge,), max_passes=5,
                                  symbol_ranks=symbol_ranks)
    return plan


#: Rewrites applied to every candidate plan, including the "naive" one: they
#: only clean up composition artefacts (lookups into range-built mappings,
#: trivial algebra) and correspond to accesses any execution engine performs
#: directly; the interesting optimizations (fusion, factorization) stay
#: exclusive to the optimized variants.
NORMALIZATION_TRANSFORMS: tuple[Transform, ...] = (
    lookup_of_range_sum,
    split_sharded_sum,
    lookup_over_add,
    simplify_node,
)


def normalize(term: Expr, max_passes: int = 10) -> Expr:
    """Apply the composition clean-up rewrites (see NORMALIZATION_TRANSFORMS)."""
    return rewrite_everywhere(term, NORMALIZATION_TRANSFORMS, max_passes)


def candidate_plans(term: Expr,
                    symbol_ranks: "Mapping[str, int] | None" = None) -> dict[str, Expr]:
    """The named candidate plans the optimizer seeds the e-graph with.

    ``symbol_ranks`` (tensor / physical symbol name -> dictionary nesting
    rank, as built by the optimizer from the catalog statistics) feeds the
    factor-moving guards; without it only syntactically derivable ranks
    protect them.
    """
    base = normalize(term)
    optimize = lambda **kw: greedy_optimize(base, symbol_ranks=symbol_ranks, **kw)  # noqa: E731
    return {
        "naive": base,
        "fused": optimize(with_fusion=True, with_factorization=False),
        "factorized": optimize(with_fusion=False, with_factorization=True),
        "fused+factorized": optimize(with_fusion=True, with_factorization=True),
        "fused+factorized+merge": optimize(
            with_fusion=True, with_factorization=True, with_merge=True),
    }
