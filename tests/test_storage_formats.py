"""Tests for storage formats: construction, round-trips, and semantic mappings.

The central invariant of Sec. 4 of the paper is that the Tensor Storage
Mapping, evaluated over the physical symbols, reproduces the logical tensor.
These tests check that invariant for every format, on hand-built and random
inputs, using the reference interpreter.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sdqlite import evaluate, to_plain
from repro.sdqlite.errors import StorageError
from repro.storage import (
    BandFormat,
    COOFormat,
    CSCFormat,
    CSFFormat,
    CSRFormat,
    DCSRFormat,
    DenseFormat,
    DOKFormat,
    FORMATS,
    LowerTriangularFormat,
    TrieFormat,
    ZOrderFormat,
    build_format,
    morton_index,
)
from repro.data.synthetic import random_sparse_matrix, random_sparse_tensor3

#: The matrix from Fig. 1(b) of the paper.
PAPER_MATRIX = np.array([
    [6.0, 0.0, 9.0, 8.0],
    [0.0, 0.0, 0.0, 0.0],
    [5.0, 0.0, 0.0, 7.0],
])


def dense_from_mapping(fmt):
    """Evaluate the storage mapping with the interpreter and densify the result."""
    logical = evaluate(fmt.mapping(), fmt.physical())
    dense = np.zeros(fmt.shape, dtype=np.float64)
    plain = to_plain(logical) if not isinstance(logical, (int, float)) else {}
    _fill(dense, plain, ())
    return dense


def _fill(dense, nested, prefix):
    for key, value in nested.items():
        if isinstance(value, dict):
            _fill(dense, value, prefix + (int(key),))
        else:
            dense[prefix + (int(key),)] = value


MATRIX_FORMATS = ["dense", "coo", "csr", "csc", "dcsr", "dok", "trie"]


@pytest.mark.parametrize("kind", MATRIX_FORMATS)
def test_matrix_format_dense_roundtrip(kind):
    fmt = build_format(kind, "C", PAPER_MATRIX)
    np.testing.assert_allclose(fmt.to_dense(), PAPER_MATRIX)


@pytest.mark.parametrize("kind", MATRIX_FORMATS)
def test_matrix_format_mapping_semantics(kind):
    fmt = build_format(kind, "C", PAPER_MATRIX)
    np.testing.assert_allclose(dense_from_mapping(fmt), PAPER_MATRIX)


def test_csr_matches_paper_figure():
    fmt = CSRFormat.from_dense("C", PAPER_MATRIX)
    physical = fmt.physical()
    assert physical["C_len1"] == 3
    np.testing.assert_array_equal(physical["C_pos2"], [0, 3, 3, 5])
    np.testing.assert_array_equal(physical["C_idx2"], [0, 2, 3, 0, 3])
    np.testing.assert_array_equal(physical["C_val"], [6, 9, 8, 5, 7])


def test_dcsr_matches_paper_figure():
    fmt = DCSRFormat.from_dense("C", PAPER_MATRIX)
    physical = fmt.physical()
    np.testing.assert_array_equal(physical["C_pos1"], [0, 2])
    np.testing.assert_array_equal(physical["C_idx1"], [0, 2])
    np.testing.assert_array_equal(physical["C_pos2"], [0, 3, 5])
    np.testing.assert_array_equal(physical["C_idx2"], [0, 2, 3, 0, 3])
    np.testing.assert_array_equal(physical["C_val"], [6, 9, 8, 5, 7])


def test_coo_vector_matches_paper_example():
    v = np.array([9.0, 0.0, 7.0, 5.0])
    fmt = COOFormat.from_dense("v", v)
    physical = fmt.physical()
    np.testing.assert_array_equal(physical["v_idx1"], [0, 2, 3])
    np.testing.assert_array_equal(physical["v_val"], [9, 7, 5])
    np.testing.assert_allclose(dense_from_mapping(fmt), v)


def test_csc_stores_by_column():
    fmt = CSCFormat.from_dense("C", PAPER_MATRIX)
    physical = fmt.physical()
    assert physical["C_len1"] == 4  # number of columns
    np.testing.assert_allclose(fmt.to_dense(), PAPER_MATRIX)
    np.testing.assert_allclose(dense_from_mapping(fmt), PAPER_MATRIX)


def test_rank_checks():
    with pytest.raises(StorageError):
        CSRFormat.from_dense("X", np.zeros((2, 2, 2)))
    with pytest.raises(StorageError):
        CSFFormat.from_dense("X", np.zeros((2, 2)))
    with pytest.raises(StorageError):
        build_format("nonexistent", "X", np.zeros((2, 2)))


def test_csf_rank3_roundtrip_and_mapping():
    coords, values = random_sparse_tensor3(6, 5, 7, 0.05, seed=3)
    fmt = CSFFormat.from_coo("B", coords, values, (6, 5, 7))
    dense = np.zeros((6, 5, 7))
    for (i, k, l), v in zip(coords, values):
        dense[i, k, l] = v
    np.testing.assert_allclose(fmt.to_dense(), dense)
    np.testing.assert_allclose(dense_from_mapping(fmt), dense)
    # segmented structure is consistent
    physical = fmt.physical()
    assert physical["B_pos2"][-1] == len(physical["B_idx2"])
    assert physical["B_pos3"][-1] == len(physical["B_idx3"])


def test_dok_and_trie_rank3():
    coords, values = random_sparse_tensor3(5, 4, 6, 0.08, seed=9)
    dense = np.zeros((5, 4, 6))
    for (i, k, l), v in zip(coords, values):
        dense[i, k, l] = v
    for cls in (DOKFormat, TrieFormat):
        fmt = cls.from_coo("T", coords, values, (5, 4, 6))
        np.testing.assert_allclose(fmt.to_dense(), dense)
        np.testing.assert_allclose(dense_from_mapping(fmt), dense)


@settings(max_examples=25, deadline=None)
@given(
    kind=st.sampled_from(MATRIX_FORMATS),
    rows=st.integers(min_value=1, max_value=8),
    cols=st.integers(min_value=1, max_value=8),
    density=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_mapping_reproduces_matrix(kind, rows, cols, density, seed):
    matrix = random_sparse_matrix(rows, cols, density, seed=seed)
    fmt = build_format(kind, "A", matrix)
    np.testing.assert_allclose(fmt.to_dense(), matrix)
    np.testing.assert_allclose(dense_from_mapping(fmt), matrix)


def test_lower_triangular_format():
    matrix = np.tril(np.arange(1, 17, dtype=np.float64).reshape(4, 4))
    fmt = LowerTriangularFormat.from_dense("A", matrix)
    np.testing.assert_allclose(fmt.to_dense(), matrix)
    np.testing.assert_allclose(dense_from_mapping(fmt), matrix)
    assert len(fmt.physical()["A_val"]) == 10
    with pytest.raises(StorageError):
        LowerTriangularFormat.from_dense("A", np.ones((3, 3)))


def test_band_format():
    n = 5
    matrix = np.zeros((n, n))
    for i in range(n):
        matrix[i, i] = 2.0
        if i < n - 1:
            matrix[i, i + 1] = -1.0
            matrix[i + 1, i] = -1.5
    fmt = BandFormat.from_dense("B", matrix)
    np.testing.assert_allclose(fmt.to_dense(), matrix)
    np.testing.assert_allclose(dense_from_mapping(fmt), matrix)
    with pytest.raises(StorageError):
        BandFormat.from_dense("B", np.ones((4, 4)))


def test_zorder_format():
    matrix = np.arange(16, dtype=np.float64).reshape(4, 4) + 1
    fmt = ZOrderFormat.from_dense("Z", matrix)
    np.testing.assert_allclose(fmt.to_dense(), matrix)
    np.testing.assert_allclose(dense_from_mapping(fmt), matrix)
    # The physical value array really is laid out along the Morton curve.
    physical = fmt.physical()
    for d in range(16):
        i, j = int(physical["Z_i"][d]), int(physical["Z_j"][d])
        assert morton_index(i, j) == d
        assert physical["Z_val"][d] == matrix[i, j]
    with pytest.raises(StorageError):
        ZOrderFormat.from_dense("Z", np.ones((3, 3)))


def test_profiles_and_kinds():
    fmt = CSRFormat.from_dense("C", PAPER_MATRIX)
    profile = fmt.profile()
    assert profile[0] == 3.0
    assert profile[1][0] == pytest.approx(5 / 3)
    kinds = fmt.physical_kinds()
    assert kinds["C_val"] == "array"
    assert kinds["C_len1"] == "scalar"
    trie = TrieFormat.from_dense("T", PAPER_MATRIX)
    assert trie.physical_kinds()["T_trie"] == "trie"
    dok = DOKFormat.from_dense("D", PAPER_MATRIX)
    assert dok.physical_kinds()["D_hash"] == "hash"
    assert fmt.segment_profiles()["C_idx2"] == pytest.approx(5 / 3)


def test_declarations_text():
    fmt = CSRFormat.from_dense("C", PAPER_MATRIX)
    ddl = fmt.declarations()
    assert "CREATE TENSOR C AS" in ddl
    assert "CREATE real ARRAY C_val(5);" in ddl
    assert "CREATE int ARRAY C_idx2(5);" in ddl


def test_format_registry_complete():
    assert set(FORMATS) == {"dense", "coo", "csr", "csc", "dcsr", "csf", "dok", "trie"}
    assert FORMATS["csr"] is CSRFormat
    assert FORMATS["dense"] is DenseFormat


# ---------------------------------------------------------------------------
# from_coo edge cases: empty tensors, single elements, duplicate coordinates
# ---------------------------------------------------------------------------

#: Rank-2 formats that can store a 4x4 matrix with entries on/below the
#: diagonal and inside the tridiagonal band (so every special format is
#: legal too).  See docs/formats.md, "Duplicate-coordinate semantics".
RANK2_KINDS = ["dense", "coo", "csr", "csc", "dcsr", "dok", "trie",
               "lower_triangular", "band", "zorder"]
RANK3_KINDS = ["dense", "coo", "csf", "dok", "trie"]
RANK1_KINDS = ["dense", "coo", "dok", "trie"]

from repro.storage import ALL_FORMATS, sum_duplicates  # noqa: E402


class TestFromCooEdgeCases:
    """The documented ``from_coo`` semantics, pinned across every format."""

    empty2 = (np.empty((0, 2), dtype=np.int64), np.empty(0))
    empty3 = (np.empty((0, 3), dtype=np.int64), np.empty(0))

    @pytest.mark.parametrize("kind", RANK2_KINDS)
    def test_empty_matrix(self, kind):
        fmt = ALL_FORMATS[kind].from_coo("E", *self.empty2, (4, 4))
        assert fmt.nnz == 0
        np.testing.assert_array_equal(fmt.to_dense(), np.zeros((4, 4)))

    @pytest.mark.parametrize("kind", RANK3_KINDS)
    def test_empty_rank3(self, kind):
        fmt = ALL_FORMATS[kind].from_coo("E", *self.empty3, (3, 3, 3))
        assert fmt.nnz == 0
        np.testing.assert_array_equal(fmt.to_dense(), np.zeros((3, 3, 3)))

    @pytest.mark.parametrize("kind", RANK1_KINDS)
    def test_empty_vector(self, kind):
        fmt = ALL_FORMATS[kind].from_coo(
            "E", np.empty((0, 1), dtype=np.int64), np.empty(0), (5,))
        assert fmt.nnz == 0
        np.testing.assert_array_equal(fmt.to_dense(), np.zeros(5))

    @pytest.mark.parametrize("kind", RANK2_KINDS)
    def test_single_element_matrix(self, kind):
        # (1, 0) is on the sub-diagonal: legal for every special format too.
        fmt = ALL_FORMATS[kind].from_coo("S", np.array([[1, 0]]), np.array([5.0]),
                                         (4, 4))
        expected = np.zeros((4, 4))
        expected[1, 0] = 5.0
        np.testing.assert_array_equal(fmt.to_dense(), expected)
        assert fmt.nnz == 1

    @pytest.mark.parametrize("kind", RANK3_KINDS)
    def test_single_element_rank3(self, kind):
        fmt = ALL_FORMATS[kind].from_coo("S", np.array([[1, 2, 0]]),
                                         np.array([3.5]), (3, 3, 3))
        expected = np.zeros((3, 3, 3))
        expected[1, 2, 0] = 3.5
        np.testing.assert_array_equal(fmt.to_dense(), expected)

    @pytest.mark.parametrize("kind", RANK2_KINDS)
    def test_duplicate_coordinates_are_summed(self, kind):
        coords = np.array([[0, 0], [0, 0], [1, 1], [0, 0]])
        values = np.array([1.0, 2.0, 3.0, 4.0])
        fmt = ALL_FORMATS[kind].from_coo("D", coords, values, (4, 4))
        expected = np.zeros((4, 4))
        expected[0, 0] = 7.0
        expected[1, 1] = 3.0
        np.testing.assert_array_equal(fmt.to_dense(), expected)

    @pytest.mark.parametrize("kind", RANK3_KINDS)
    def test_duplicate_coordinates_rank3(self, kind):
        coords = np.array([[0, 1, 2], [0, 1, 2], [2, 2, 2]])
        values = np.array([1.5, 2.5, -1.0])
        fmt = ALL_FORMATS[kind].from_coo("D", coords, values, (3, 3, 3))
        expected = np.zeros((3, 3, 3))
        expected[0, 1, 2] = 4.0
        expected[2, 2, 2] = -1.0
        np.testing.assert_array_equal(fmt.to_dense(), expected)

    def test_duplicates_coalesce_in_coo_storage(self):
        coords = np.array([[0, 0], [0, 0], [1, 1]])
        fmt = COOFormat.from_coo("D", coords, np.array([1.0, 2.0, 3.0]), (2, 2))
        # Stored coordinates are unique and row-major sorted.
        assert fmt.nnz == 2
        np.testing.assert_array_equal(fmt.coords, [[0, 0], [1, 1]])
        np.testing.assert_array_equal(fmt.values, [3.0, 3.0])

    @pytest.mark.parametrize("kind", ["coo", "csr", "dok", "trie"])
    def test_duplicates_summing_to_zero(self, kind):
        coords = np.array([[0, 0], [0, 0], [1, 1]])
        values = np.array([2.0, -2.0, 3.0])
        fmt = ALL_FORMATS[kind].from_coo("Z", coords, values, (2, 2))
        expected = np.zeros((2, 2))
        expected[1, 1] = 3.0
        np.testing.assert_array_equal(fmt.to_dense(), expected)
        # Entries summing to zero are dropped uniformly, so nnz does not
        # depend on the format (or on the conversion path taken later).
        assert fmt.nnz == 1

    @pytest.mark.parametrize("kind", ["coo", "csr", "dok", "trie"])
    def test_mapping_semantics_with_duplicates(self, kind):
        coords = np.array([[0, 0], [0, 0], [2, 3], [2, 3], [1, 2]])
        values = np.array([1.0, 1.0, 2.0, 5.0, 4.0])
        fmt = ALL_FORMATS[kind].from_coo("D", coords, values, (3, 4))
        expected = np.zeros((3, 4))
        np.add.at(expected, tuple(coords.T), values)
        np.testing.assert_allclose(dense_from_mapping(fmt), expected)

    def test_sum_duplicates_helper(self):
        coords, values = sum_duplicates(
            np.array([[2, 0], [0, 1], [2, 0]]), np.array([1.0, 2.0, 3.0]), 2)
        np.testing.assert_array_equal(coords, [[0, 1], [2, 0]])
        np.testing.assert_array_equal(values, [2.0, 4.0])
        # Empty input stays empty (and keeps its shape).
        coords, values = sum_duplicates(np.empty((0, 2)), np.empty(0), 2)
        assert coords.shape == (0, 2) and values.shape == (0,)


# ---------------------------------------------------------------------------
# O(nnz) interchange: coo_arrays / scipy exports must never densify
# ---------------------------------------------------------------------------

import tracemalloc  # noqa: E402

from repro.storage import coo_arrays  # noqa: E402
from repro.storage.convert import to_scipy_csc, to_scipy_csr  # noqa: E402

#: A huge-but-sparse matrix: 2^30 dense cells (8 GiB as float64), 1000 nnz.
#: Any conversion path that materializes the dense array blows the ceiling
#: (and likely the machine) instantly.
_HUGE = 1 << 15
#: Generous allocation ceiling for an O(nnz) conversion of 1000 entries.
_CEILING_BYTES = 8 << 20


def _huge_sparse_coo(rank=2, seed=0):
    rng = np.random.default_rng(seed)
    dim = _HUGE if rank == 2 else 1 << 10
    coords = rng.integers(0, dim, size=(1000, rank))
    return coords, rng.random(1000), (dim,) * rank


@pytest.mark.parametrize("kind", ["coo", "csr", "csc", "dcsr", "dok", "trie"])
def test_coo_arrays_is_o_nnz(kind):
    coords, values, shape = _huge_sparse_coo()
    fmt = ALL_FORMATS[kind].from_coo("H", coords, values, shape)
    expected_coords, expected_values = sum_duplicates(coords, values, 2)
    tracemalloc.start()
    try:
        got_coords, got_values = coo_arrays(fmt)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert peak < _CEILING_BYTES, f"{kind}: coo_arrays allocated {peak} bytes"
    np.testing.assert_array_equal(got_coords, expected_coords)
    np.testing.assert_allclose(got_values, expected_values)


@pytest.mark.parametrize("kind", ["coo", "csf", "dok", "trie"])
def test_coo_arrays_is_o_nnz_rank3(kind):
    coords, values, shape = _huge_sparse_coo(rank=3)
    fmt = ALL_FORMATS[kind].from_coo("H", coords, values, shape)
    expected_coords, expected_values = sum_duplicates(coords, values, 3)
    tracemalloc.start()
    try:
        got_coords, got_values = coo_arrays(fmt)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert peak < _CEILING_BYTES, f"{kind}: coo_arrays allocated {peak} bytes"
    np.testing.assert_array_equal(got_coords, expected_coords)
    np.testing.assert_allclose(got_values, expected_values)


class TestScipyExports:
    """`to_scipy_csr` / `to_scipy_csc` build from coordinates, never densify."""

    scipy_sparse = pytest.importorskip("scipy.sparse")

    @pytest.mark.parametrize("kind", ["coo", "csr", "csc", "dcsr", "dok", "trie"])
    def test_csr_and_csc_match_on_huge_sparse(self, kind):
        coords, values, shape = _huge_sparse_coo()
        fmt = ALL_FORMATS[kind].from_coo("H", coords, values, shape)
        expected_coords, expected_values = sum_duplicates(coords, values, 2)
        tracemalloc.start()
        try:
            csr = to_scipy_csr(fmt)
            csc = to_scipy_csc(fmt)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert peak < _CEILING_BYTES, f"{kind}: scipy export allocated {peak}"
        assert csr.shape == shape and csc.shape == shape
        for matrix in (csr.tocoo(), csc.tocoo()):
            order = np.lexsort((matrix.col, matrix.row))
            np.testing.assert_array_equal(
                np.column_stack([matrix.row[order], matrix.col[order]]),
                expected_coords)
            np.testing.assert_allclose(matrix.data[order], expected_values)

    @pytest.mark.parametrize("kind", ["coo", "csr", "csc", "dcsr", "dok", "trie"])
    def test_empty_matrix_exports(self, kind):
        fmt = ALL_FORMATS[kind].from_coo(
            "E", np.empty((0, 2), dtype=np.int64), np.empty(0), (4, 5))
        csr = to_scipy_csr(fmt)
        csc = to_scipy_csc(fmt)
        assert csr.shape == (4, 5) and csr.nnz == 0
        assert csc.shape == (4, 5) and csc.nnz == 0

    def test_csc_of_csc_is_built_from_native_arrays(self):
        dense = np.array([[1.0, 0.0], [0.0, 2.0], [3.0, 0.0]])
        fmt = ALL_FORMATS["csc"].from_dense("C", dense)
        csc = to_scipy_csc(fmt)
        assert csc.format == "csc"
        np.testing.assert_array_equal(csc.toarray(), dense)
        # native value array is reused, not rebuilt through a COO detour
        # (scipy downcasts the int64 index arrays, so only data is shared)
        assert np.shares_memory(csc.data, fmt.val)
