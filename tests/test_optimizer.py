"""End-to-end tests of the cost-based optimizer (both pipelines)."""

import numpy as np
import pytest

from repro import storel
from repro.baselines import reference_result
from repro.core import Optimizer, Statistics
from repro.data.synthetic import random_dense_vector, random_sparse_matrix
from repro.execution import ExecutionEngine, result_to_dense
from repro.kernels import BATAX_NESTED, MMM, SUM_MMM, get_kernel
from repro.sdqlite import evaluate, values_equal
from repro.sdqlite.errors import OptimizationError
from repro.storage import Catalog, CSRFormat, DenseFormat, TrieFormat


def batax_catalog(size=10, density=0.3, seed=1):
    a = random_sparse_matrix(size, size, density, seed=seed)
    x = random_dense_vector(size, seed=seed + 1)
    return (Catalog()
            .add(CSRFormat.from_dense("A", a))
            .add(DenseFormat.from_dense("X", x))
            .add_scalar("beta", 2.0))


def mmm_catalog(size=10, density=0.3, seed=2):
    return (Catalog()
            .add(CSRFormat.from_dense("A", random_sparse_matrix(size, size, density, seed=seed)))
            .add(CSRFormat.from_dense("B", random_sparse_matrix(size, size, density, seed=seed + 1))))


@pytest.mark.parametrize("method", ["greedy", "egraph"])
def test_optimizer_produces_correct_batax_plan(method):
    catalog = batax_catalog()
    stats = Statistics.from_catalog(catalog)
    optimizer = Optimizer(stats, iter_limit=5, node_limit=2500)
    result = optimizer.optimize(BATAX_NESTED.program, catalog.mappings(), method=method)
    assert np.isfinite(result.cost)
    value = evaluate(result.plan, catalog.globals())
    expected = reference_result(BATAX_NESTED, catalog)
    got = np.array([value.get(j, 0.0) for j in range(10)])
    np.testing.assert_allclose(got, expected, rtol=1e-9)
    # The chosen plan must be much cheaper than the naive plan.
    naive_cost = result.candidate_costs.get("naive")
    assert naive_cost is not None and result.cost < naive_cost / 10


def test_optimizer_greedy_picks_cheapest_candidate():
    catalog = batax_catalog()
    stats = Statistics.from_catalog(catalog)
    result = Optimizer(stats).optimize(BATAX_NESTED.program, catalog.mappings(),
                                       method="greedy")
    assert result.chosen_candidate in ("fused+factorized", "fused+factorized+merge", "fused")
    assert result.cost == min(result.candidate_costs.values())
    assert result.optimization_time_ms > 0


def test_optimizer_reports_table4_metrics():
    catalog = mmm_catalog(size=6)
    stats = Statistics.from_catalog(catalog)
    result = Optimizer(stats, iter_limit=4, node_limit=1500).optimize(
        MMM.program, catalog.mappings(), method="egraph")
    rows = result.table4_rows()
    assert len(rows) == 2
    assert rows[0]["stage"] == "storage-independent"
    assert rows[1]["stage"] == "storage-aware"
    for row in rows:
        assert row["iterations"] >= 1
        assert row["nodes"] > 0 and row["classes"] > 0 and row["memos"] > 0
        assert row["time_ms"] > 0


def test_optimizer_rejects_unknown_method():
    catalog = mmm_catalog(size=4)
    stats = Statistics.from_catalog(catalog)
    with pytest.raises(OptimizationError):
        Optimizer(stats).optimize(MMM.program, catalog.mappings(), method="quantum")


def test_optimizer_adapts_to_storage_choice():
    """The plan chosen for a trie-stored matrix differs from the CSR one (Fig. 9 story)."""
    size = 10
    a = random_sparse_matrix(size, size, 0.2, seed=5)
    x = random_dense_vector(size, seed=6)
    csr_catalog = (Catalog().add(CSRFormat.from_dense("A", a))
                   .add(DenseFormat.from_dense("X", x)).add_scalar("beta", 2.0))
    trie_catalog = (Catalog().add(TrieFormat.from_dense("A", a))
                    .add(DenseFormat.from_dense("X", x)).add_scalar("beta", 2.0))
    expected = reference_result(BATAX_NESTED, csr_catalog)
    for catalog in (csr_catalog, trie_catalog):
        stats = Statistics.from_catalog(catalog)
        result = Optimizer(stats).optimize(BATAX_NESTED.program, catalog.mappings(),
                                           method="greedy")
        value = evaluate(result.plan, catalog.globals())
        got = np.array([value.get(j, 0.0) for j in range(size)])
        np.testing.assert_allclose(got, expected, rtol=1e-9)
    # CSR plans mention the segmented position arrays; trie plans do not have them.
    csr_stats = Statistics.from_catalog(csr_catalog)
    csr_plan = Optimizer(csr_stats).optimize(
        BATAX_NESTED.program, csr_catalog.mappings(), method="greedy").plan
    assert "A_pos2" in str(csr_plan)
    trie_stats = Statistics.from_catalog(trie_catalog)
    trie_plan = Optimizer(trie_stats).optimize(
        BATAX_NESTED.program, trie_catalog.mappings(), method="greedy").plan
    assert "A_trie" in str(trie_plan)


# ---------------------------------------------------------------------------
# the high-level storel API
# ---------------------------------------------------------------------------


def test_storel_run_quickstart():
    catalog = batax_catalog(size=8)
    result = storel.run(BATAX_NESTED.source, catalog, dense_shape=(8,))
    expected = reference_result(BATAX_NESTED, catalog)
    np.testing.assert_allclose(result, expected)


def test_storel_run_detailed_and_explain():
    catalog = mmm_catalog(size=6)
    outcome = storel.run_detailed(MMM.source, catalog, dense_shape=(6, 6))
    expected = reference_result(MMM, catalog)
    np.testing.assert_allclose(outcome.result, expected)
    assert "def " in outcome.plan_source
    assert outcome.optimization.cost > 0
    text = storel.explain(SUM_MMM.source, mmm_catalog(size=6))
    assert "chosen plan" in text and "candidate costs" in text


def test_storel_interpret_backend():
    catalog = mmm_catalog(size=5)
    compiled = storel.run(MMM.source, catalog, dense_shape=(5, 5), backend="compile")
    interpreted = storel.run(MMM.source, catalog, dense_shape=(5, 5), backend="interpret")
    np.testing.assert_allclose(compiled, interpreted)
