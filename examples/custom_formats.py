"""Custom storage formats: triangular, band, and Z-order matrices.

Sec. 4 of the paper argues that declarative storage mappings go beyond any
fixed menu of formats.  This example stores three structured matrices in
special-purpose layouts, shows their SDQLite mappings, and runs the same
tensor program (a matrix-vector product followed by a total sum) over each —
without changing a single line of the program.

Run with::

    python examples/custom_formats.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro import storel
from repro.storage import BandFormat, Catalog, DenseFormat, LowerTriangularFormat, ZOrderFormat


def lower_triangular(n: int) -> np.ndarray:
    return np.tril(np.arange(1.0, n * n + 1).reshape(n, n) / (n * n))


def tridiagonal(n: int) -> np.ndarray:
    matrix = np.zeros((n, n))
    for i in range(n):
        matrix[i, i] = 2.0
        if i + 1 < n:
            matrix[i, i + 1] = -1.0
            matrix[i + 1, i] = -1.0
    return matrix


def z_order(n: int) -> np.ndarray:
    return np.arange(1.0, n * n + 1).reshape(n, n)


PROGRAM = "sum(<(i, j), a> in A, <k, x> in X) if (j == k) then { i -> a * x }"


def main() -> None:
    n = 64
    x = np.linspace(0.1, 1.0, n)
    matrices = {
        "lower-triangular": (LowerTriangularFormat, lower_triangular(n)),
        "band (tridiagonal)": (BandFormat, tridiagonal(n)),
        "Z-order curve": (ZOrderFormat, z_order(n)),
    }
    for label, (format_cls, dense) in matrices.items():
        catalog = (
            Catalog()
            .add(format_cls.from_dense("A", dense))
            .add(DenseFormat.from_dense("X", x))
        )
        print(f"=== {label} ===")
        print("storage mapping:", catalog["A"].mapping_source())
        physical = catalog["A"].physical()
        stored_values = sum(len(v) for v in physical.values() if hasattr(v, "__len__"))
        print(f"stored values: {stored_values} (dense would store {n * n})")
        result = storel.run(PROGRAM, catalog, dense_shape=(n,))
        expected = dense @ x
        print("matches NumPy:", np.allclose(result, expected))
        print()


if __name__ == "__main__":
    main()
