"""Conversions between storage formats, NumPy, SciPy — and in-catalog re-formats.

Two layers live here:

* **Interchange** (:func:`from_scipy`, :func:`to_scipy_csr`,
  :func:`to_scipy_csc`, :func:`to_dense_vector`, :func:`coo_arrays`,
  :func:`as_relation`): used by the baseline systems (SciPy / NumPy / the
  relational baseline execute the same data) and by the dataset loaders,
  which generate data once and hand it to every system in the same benchmark
  run.
* **Re-formatting** (:func:`reformat`, :func:`reformat_in_catalog`,
  :func:`candidate_formats`): re-store a tensor in another format while
  keeping its logical name and contents — the mechanics behind the paper's
  central claim (Sec. 4) that storage is a *choice*, and the executor of the
  workload-driven advisor's recommendations (:mod:`repro.advisor`, which
  calls :func:`reformat` through
  :meth:`repro.session.Session.apply_recommendation`).

All conversions go through coordinate form (:func:`coo_arrays`), so the
sum-duplicates semantics documented in :func:`repro.storage.formats.sum_duplicates`
hold uniformly.  Example::

    >>> import numpy as np
    >>> from repro.storage import CSRFormat
    >>> from repro.storage.convert import reformat
    >>> csr = CSRFormat.from_dense("A", np.eye(3))
    >>> reformat(csr, "trie").format_name
    'trie'
"""

from __future__ import annotations

import numpy as np

try:  # SciPy is optional: only the interchange helpers below need it.
    import scipy.sparse as sp
except ImportError:  # pragma: no cover - exercised only on scipy-less installs
    sp = None

from ..sdqlite.errors import StorageError
from .formats import (
    COOFormat,
    CSCFormat,
    CSRFormat,
    DenseFormat,
    FORMATS,
    StorageFormat,
    TensorStats,
    build_format,
)
from .special import SPECIAL_FORMATS

#: Every named storage format: the general-purpose menu of ``formats.py``
#: plus the Sec. 4 special formats.  This is the advisor's search alphabet.
ALL_FORMATS: dict[str, type[StorageFormat]] = {**FORMATS, **SPECIAL_FORMATS}


def _require_scipy() -> None:
    if sp is None:
        raise StorageError("this conversion requires scipy, which is not installed")


def from_scipy(kind: str, name: str, matrix) -> StorageFormat:
    """Build a storage format from any SciPy sparse matrix.

    ``kind`` names one of the repro formats (``"csr"``, ``"trie"``, ...);
    the SciPy matrix is read out in COO form, so duplicate entries are summed
    exactly as SciPy itself would on ``sum_duplicates()``.
    """
    _require_scipy()
    coo = matrix.tocoo()
    coords = np.stack([coo.row, coo.col], axis=1)
    try:
        cls = ALL_FORMATS[kind]
    except KeyError as exc:
        raise StorageError(f"unknown storage format {kind!r}") from exc
    return cls.from_coo(name, coords, coo.data, coo.shape)


def to_scipy_csr(fmt: StorageFormat):
    """Convert a rank-2 format to a SciPy CSR matrix (zero-copy when already CSR)."""
    _require_scipy()
    if len(fmt.shape) != 2:
        raise StorageError("to_scipy_csr requires a rank-2 tensor")
    if isinstance(fmt, CSRFormat) and not isinstance(fmt, CSCFormat):
        return sp.csr_matrix((fmt.val, fmt.idx, fmt.pos), shape=fmt.shape)
    return sp.csr_matrix(fmt.to_dense())


def to_scipy_csc(fmt: StorageFormat):
    """Convert a rank-2 format to a SciPy CSC matrix."""
    _require_scipy()
    if len(fmt.shape) != 2:
        raise StorageError("to_scipy_csc requires a rank-2 tensor")
    return sp.csc_matrix(fmt.to_dense()) if fmt.nnz else sp.csc_matrix(fmt.shape)


def to_dense_vector(fmt: StorageFormat) -> np.ndarray:
    """Convert a rank-1 format to a dense NumPy vector."""
    if len(fmt.shape) != 1:
        raise StorageError("to_dense_vector requires a rank-1 tensor")
    return fmt.to_dense()


def coo_arrays(fmt: StorageFormat) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(coords, values)`` for any format (via a COO round-trip).

    The canonical interchange representation: every re-format and baseline
    conversion goes through here, so a tensor's contents survive any chain of
    format changes bit-for-bit (coordinates come out sorted row-major,
    explicit zeros dropped).
    """
    if isinstance(fmt, COOFormat):
        return fmt.coords.copy(), fmt.values.copy()
    dense = fmt.to_dense()
    coords = np.argwhere(dense != 0)
    values = dense[tuple(coords.T)] if coords.size else np.empty(0)
    return coords.astype(np.int64), np.asarray(values, dtype=np.float64)


def as_relation(fmt: StorageFormat) -> np.ndarray:
    """Encode the tensor as a relation: one row per non-zero, columns = coords + value.

    This is the representation used by the DuckDB-like relational baseline
    (tensors as relations, Sec. 2 of the paper).
    """
    coords, values = coo_arrays(fmt)
    if coords.size == 0:
        return np.zeros((0, len(fmt.shape) + 1))
    return np.column_stack([coords.astype(np.float64), values])


def densify(fmt: StorageFormat) -> DenseFormat:
    """Re-store any tensor densely (used by the dense-vs-sparse sweeps of Fig. 8)."""
    return DenseFormat(fmt.name, fmt.to_dense())


def apply_delta(fmt: StorageFormat, coords, values) -> StorageFormat:
    """Add a sparse delta to a tensor, returning a new format of the same class.

    ``coords`` is an ``(n, rank)`` integer array (or nested sequence) and
    ``values`` the ``n`` additive deltas.  Existing entries are incremented,
    absent ones inserted, and entries cancelling to exact zero dropped — the
    same coalescing semantics as
    :func:`repro.storage.formats.sum_duplicates`, so the result equals
    re-building the format from the updated dense tensor.  The format class
    and shape are preserved, which is what lets
    :meth:`repro.storage.Catalog.update` treat this as a value-only
    mutation.  Special formats re-validate their structural preconditions
    and raise :class:`~repro.sdqlite.errors.StorageError` when the delta
    breaks them (e.g. writing above the diagonal of a lower-triangular
    tensor).
    """
    rank = len(fmt.shape)
    coords = np.asarray(coords, dtype=np.int64).reshape(-1, rank)
    values = np.asarray(values, dtype=np.float64).reshape(-1)
    if len(coords) != len(values):
        raise StorageError(
            f"delta has {len(coords)} coordinates but {len(values)} values")
    if len(coords) and ((coords < 0).any()
                        or (coords >= np.asarray(fmt.shape)).any()):
        raise StorageError(
            f"delta coordinates out of range for shape {tuple(fmt.shape)}")
    if not len(coords):
        return fmt
    if isinstance(fmt, DenseFormat):
        dense = fmt.array.copy()
        np.add.at(dense, tuple(coords.T), values)
        return DenseFormat(fmt.name, dense)
    base_coords, base_values = coo_arrays(fmt)
    all_coords = (np.concatenate([base_coords, coords])
                  if base_coords.size else coords)
    all_values = (np.concatenate([base_values, values])
                  if base_values.size else values)
    return type(fmt).from_coo(fmt.name, all_coords, all_values, fmt.shape)


def reformat(fmt: StorageFormat, kind: str) -> StorageFormat:
    """Re-store a tensor in the format named ``kind``, keeping name and contents.

    Accepts every format name in :data:`ALL_FORMATS` (the general-purpose
    formats *and* the Sec. 4 special formats — the special constructors
    validate their structural preconditions and raise
    :class:`~repro.sdqlite.errors.StorageError` when the data does not fit).
    Returns ``fmt`` itself when it already has that format, so callers can
    use ``reformat(fmt, kind) is fmt`` as a no-op check.

    >>> import numpy as np
    >>> from repro.storage import TrieFormat
    >>> trie = TrieFormat.from_dense("A", np.tril(np.ones((4, 4))))
    >>> reformat(trie, "lower_triangular").format_name
    'lower_triangular'
    """
    try:
        cls = ALL_FORMATS[kind]
    except KeyError as exc:
        raise StorageError(f"unknown storage format {kind!r}") from exc
    if fmt.format_name == kind:
        return fmt
    coords, values = coo_arrays(fmt)
    return cls.from_coo(fmt.name, coords, values, fmt.shape)


def reformat_in_catalog(catalog, name: str, kind: str) -> StorageFormat:
    """Re-store tensor ``name`` inside ``catalog`` in the format named ``kind``.

    This is the in-place re-format behind
    :meth:`repro.session.Session.apply_recommendation`: the converted format
    replaces the old one via :meth:`repro.storage.Catalog.replace`, which
    bumps the catalog's schema epoch so sessions rebuild statistics and
    prepared statements transparently re-prepare.  A no-op (tensor already
    stored that way) leaves the catalog epochs untouched.
    """
    try:
        fmt = catalog.tensors[name]
    except KeyError as exc:
        raise StorageError(f"cannot re-format {name!r}: not a registered tensor") from exc
    converted = reformat(fmt, kind)
    if converted is not fmt:
        catalog.replace(converted)
    return converted


def candidate_formats(fmt: StorageFormat, *, include_special: bool = True,
                      stats: TensorStats | None = None) -> list[str]:
    """Names of every format that can legally store ``fmt``'s tensor.

    Asks each registered format class :meth:`StorageFormat.candidates_for`
    with a :class:`TensorStats` summary of the tensor (computed once here
    unless passed in).  The tensor's *current* format is always included.
    ``include_special=False`` restricts the answer to the general-purpose
    menu of ``formats.py``.
    """
    stats = stats if stats is not None else TensorStats.of(fmt)
    registry = ALL_FORMATS if include_special else FORMATS
    names = [name for name, cls in registry.items() if cls.candidates_for(stats)]
    if fmt.format_name not in names and fmt.format_name in registry:
        names.append(fmt.format_name)
    return names


def restore(fmt: StorageFormat, kind: str) -> StorageFormat:
    """Re-store a tensor in another format, keeping its name and contents.

    Historical alias of :func:`reformat` restricted to the general-purpose
    formats; prefer :func:`reformat`, which also accepts the special formats.
    """
    return build_format(kind, fmt.name, fmt.to_dense())
