"""Recursive-descent parser for SDQLite source text and its small DDL.

The expression grammar follows the paper's concrete syntax::

    sum(<(i,k,l), B_v> in B, <(k,j), C_v> in C, <(j,l), D_v> in D)
      { (i, j) -> B_v * C_v * D_v }

    sum (<row,_> in 0:C_len1)
      { @unique row ->
          sum(<off,col> in C_idx2( C_pos2(row):C_pos2(row+1) ))
            { @unique col -> C_val(off) } }

The DDL covers the ``CREATE`` statements of Sec. 4::

    CREATE int SCALAR M, N;
    CREATE real ARRAY V(M * N);
    CREATE real HASHMAP H(M, N);
    CREATE real TRIE T(M)(N);
    CREATE TENSOR C AS <sdqlite expression>;

:func:`parse_expr` returns a *named-form* AST where bound identifiers are
:class:`~repro.sdqlite.ast.Var` and everything else is
:class:`~repro.sdqlite.ast.Sym`.  :func:`parse_program` returns the list of
declarations.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from . import desugar as sugar
from .ast import (
    Add,
    And,
    Cmp,
    Const,
    Div,
    Expr,
    Get,
    IfThen,
    Merge,
    Mul,
    Neg,
    Not,
    Or,
    RangeExpr,
    SliceGet,
    Sub,
    Sym,
    Var,
    children,
    rebuild,
)
from .errors import ParseError

# ---------------------------------------------------------------------------
# Declarations produced by the DDL
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScalarDecl:
    """``CREATE [real|int] SCALAR name``"""

    name: str
    dtype: str = "real"


@dataclass(frozen=True)
class ArrayDecl:
    """``CREATE [real|int] ARRAY name(size)``"""

    name: str
    size: Expr
    dtype: str = "real"


@dataclass(frozen=True)
class HashMapDecl:
    """``CREATE [real|int] HASHMAP name(n1, ..., nd)``"""

    name: str
    dims: tuple[Expr, ...]
    dtype: str = "real"


@dataclass(frozen=True)
class TrieDecl:
    """``CREATE [real|int] TRIE name(n1)(n2)...(nd)``"""

    name: str
    dims: tuple[Expr, ...]
    dtype: str = "real"


@dataclass(frozen=True)
class TensorDecl:
    """``CREATE TENSOR name AS expr`` — a Tensor Storage Mapping."""

    name: str
    mapping: Expr


Declaration = ScalarDecl | ArrayDecl | HashMapDecl | TrieDecl | TensorDecl


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
      (?P<ws>\s+|\#[^\n]*|//[^\n]*)
    | (?P<number>\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+|\d+(?:[eE][+-]?\d+)?)
    | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
    | (?P<op>->|==|!=|<=|>=|&&|\|\||[-+*/%(){}<>,;:=@!_])
    """,
    re.VERBOSE,
)

_KEYWORDS = {"sum", "let", "in", "if", "then", "merge", "true", "false"}
_DDL_KEYWORDS = {"create", "tensor", "array", "hashmap", "trie", "scalar", "as", "real", "int"}


@dataclass
class Token:
    kind: str  # 'number' | 'name' | 'op' | 'eof'
    text: str
    line: int
    column: int


def tokenize(source: str) -> list[Token]:
    """Split ``source`` into tokens, raising :class:`ParseError` on junk."""
    tokens: list[Token] = []
    pos = 0
    line = 1
    line_start = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            column = pos - line_start + 1
            raise ParseError(f"unexpected character {source[pos]!r}", line, column)
        text = match.group(0)
        kind = match.lastgroup
        if kind != "ws":
            tokens.append(Token(kind, text, line, pos - line_start + 1))
        newlines = text.count("\n")
        if newlines:
            line += newlines
            line_start = pos + text.rfind("\n") + 1
        pos = match.end()
    tokens.append(Token("eof", "", line, pos - line_start + 1))
    return tokens


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.position = 0

    # -- token helpers ------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.peek()
        if token.kind != "eof":
            self.position += 1
        return token

    def check(self, text: str) -> bool:
        return self.peek().text == text

    def check_name(self, *names: str) -> bool:
        token = self.peek()
        return token.kind == "name" and token.text.lower() in names

    def accept(self, text: str) -> bool:
        if self.check(text):
            self.advance()
            return True
        return False

    def expect(self, text: str) -> Token:
        token = self.peek()
        if token.text != text:
            raise ParseError(f"expected {text!r} but found {token.text!r}", token.line, token.column)
        return self.advance()

    def expect_name(self) -> str:
        token = self.peek()
        if token.kind != "name":
            raise ParseError(f"expected an identifier but found {token.text!r}", token.line, token.column)
        self.advance()
        return token.text

    def at_end(self) -> bool:
        return self.peek().kind == "eof"

    # -- program / DDL ------------------------------------------------------

    def parse_program(self) -> list[Declaration]:
        declarations: list[Declaration] = []
        while not self.at_end():
            if self.check_name("create"):
                declarations.append(self.parse_create())
            else:
                token = self.peek()
                raise ParseError(f"expected CREATE statement, found {token.text!r}", token.line, token.column)
            # Statements are separated by optional semicolons.
            while self.accept(";"):
                pass
        return declarations

    def parse_create(self) -> Declaration:
        self.advance()  # CREATE
        dtype = "real"
        if self.check_name("real", "int"):
            dtype = self.advance().text.lower()
        kind_token = self.peek()
        kind = kind_token.text.lower()
        if kind == "tensor":
            self.advance()
            name = self.expect_name()
            if not self.check_name("as"):
                raise ParseError("expected AS in CREATE TENSOR", self.peek().line, self.peek().column)
            self.advance()
            mapping = self.parse_expression()
            return TensorDecl(name, mapping)
        if kind == "scalar":
            self.advance()
            name = self.expect_name()
            # Multiple scalars may be declared at once; return the first and
            # push the rest back as separate declarations by re-entering.
            names = [name]
            while self.accept(","):
                names.append(self.expect_name())
            if len(names) == 1:
                return ScalarDecl(names[0], dtype)
            return _MultiScalarDecl([ScalarDecl(n, dtype) for n in names])
        if kind == "array":
            self.advance()
            name = self.expect_name()
            self.expect("(")
            size = self.parse_expression()
            self.expect(")")
            return ArrayDecl(name, size, dtype)
        if kind == "hashmap":
            self.advance()
            name = self.expect_name()
            self.expect("(")
            dims = [self.parse_expression()]
            while self.accept(","):
                dims.append(self.parse_expression())
            self.expect(")")
            return HashMapDecl(name, tuple(dims), dtype)
        if kind == "trie":
            self.advance()
            name = self.expect_name()
            dims = []
            while self.check("("):
                self.expect("(")
                dims.append(self.parse_expression())
                self.expect(")")
            if not dims:
                raise ParseError("TRIE requires at least one dimension", kind_token.line, kind_token.column)
            return TrieDecl(name, tuple(dims), dtype)
        raise ParseError(f"unknown CREATE kind {kind_token.text!r}", kind_token.line, kind_token.column)

    # -- expressions --------------------------------------------------------

    def parse_expression(self) -> Expr:
        return self.parse_or()

    def parse_or(self) -> Expr:
        left = self.parse_and()
        while self.check("||"):
            self.advance()
            left = Or(left, self.parse_and())
        return left

    def parse_and(self) -> Expr:
        left = self.parse_cmp()
        while self.check("&&"):
            self.advance()
            left = And(left, self.parse_cmp())
        return left

    def parse_cmp(self) -> Expr:
        left = self.parse_range()
        token = self.peek()
        if token.text in ("==", "!=", "<=", ">=", "<", ">"):
            self.advance()
            right = self.parse_range()
            return Cmp(token.text, left, right)
        return left

    def parse_range(self) -> Expr:
        left = self.parse_add()
        if self.check(":"):
            self.advance()
            right = self.parse_add()
            return RangeExpr(left, right)
        return left

    def parse_add(self) -> Expr:
        left = self.parse_mul()
        while self.peek().text in ("+", "-"):
            op = self.advance().text
            right = self.parse_mul()
            left = Add(left, right) if op == "+" else Sub(left, right)
        return left

    def parse_mul(self) -> Expr:
        left = self.parse_unary()
        while self.peek().text in ("*", "/"):
            op = self.advance().text
            right = self.parse_unary()
            left = Mul(left, right) if op == "*" else Div(left, right)
        return left

    def parse_unary(self) -> Expr:
        if self.accept("-"):
            return Neg(self.parse_unary())
        if self.accept("!"):
            return Not(self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self) -> Expr:
        expr = self.parse_atom()
        while self.check("("):
            self.advance()
            if self.accept(")"):
                # e() — lookup with the empty (0-dimensional) key: identity.
                continue
            first = self.parse_expression()
            if isinstance(first, RangeExpr):
                expr = SliceGet(expr, first.lo, first.hi)
            else:
                expr = Get(expr, first)
            while self.accept(","):
                arg = self.parse_expression()
                if isinstance(arg, RangeExpr):
                    expr = SliceGet(expr, arg.lo, arg.hi)
                else:
                    expr = Get(expr, arg)
            self.expect(")")
        return expr

    def parse_atom(self) -> Expr:
        token = self.peek()
        if token.kind == "number":
            self.advance()
            if any(ch in token.text for ch in ".eE") and not token.text.isdigit():
                return Const(float(token.text))
            return Const(int(token.text))
        if token.kind == "name":
            lowered = token.text.lower()
            if lowered == "sum":
                return self.parse_sum()
            if lowered == "let":
                return self.parse_let()
            if lowered == "if":
                return self.parse_if()
            if lowered == "merge":
                return self.parse_merge()
            if lowered == "true":
                self.advance()
                return Const(True)
            if lowered == "false":
                self.advance()
                return Const(False)
            self.advance()
            return Var(token.text)
        if token.text == "(":
            self.advance()
            expr = self.parse_expression()
            self.expect(")")
            return expr
        if token.text == "{":
            return self.parse_dict()
        raise ParseError(f"unexpected token {token.text!r}", token.line, token.column)

    # -- composite constructs ------------------------------------------------

    def parse_sum(self) -> Expr:
        self.advance()  # sum
        self.expect("(")
        bindings = [self.parse_binding()]
        while self.accept(","):
            bindings.append(self.parse_binding())
        self.expect(")")
        body = self.parse_expression()
        return sugar.desugar_sum(bindings, body)

    def parse_binding(self) -> sugar.Binding:
        self.expect("<")
        key_names: list[str]
        if self.accept("("):
            key_names = [self.parse_pattern_name()]
            while self.accept(","):
                key_names.append(self.parse_pattern_name())
            self.expect(")")
        else:
            key_names = [self.parse_pattern_name()]
        self.expect(",")
        val_name = self.parse_pattern_name()
        self.expect(">")
        if not self.check_name("in"):
            token = self.peek()
            raise ParseError(f"expected 'in' but found {token.text!r}", token.line, token.column)
        self.advance()
        source = self.parse_expression()
        return sugar.Binding(key_names, val_name, source)

    def parse_pattern_name(self) -> str:
        token = self.peek()
        if token.text == "_":
            self.advance()
            return "_"
        if token.kind != "name":
            raise ParseError(f"expected a variable name, found {token.text!r}", token.line, token.column)
        self.advance()
        return token.text

    def parse_let(self) -> Expr:
        self.advance()  # let
        bindings = [self.parse_let_binding()]
        while self.accept(","):
            bindings.append(self.parse_let_binding())
        if not self.check_name("in"):
            token = self.peek()
            raise ParseError(f"expected 'in' but found {token.text!r}", token.line, token.column)
        self.advance()
        body = self.parse_expression()
        return sugar.desugar_let(bindings, body)

    def parse_let_binding(self) -> sugar.LetBinding:
        name = self.expect_name()
        self.expect("=")
        value = self.parse_expression()
        return sugar.LetBinding(name, value)

    def parse_if(self) -> Expr:
        self.advance()  # if
        self.expect("(")
        cond = self.parse_expression()
        self.expect(")")
        if self.check_name("then"):
            self.advance()
        body = self.parse_expression()
        return IfThen(cond, body)

    def parse_merge(self) -> Expr:
        self.advance()  # merge
        self.expect("(")
        self.expect("<")
        key1 = self.parse_pattern_name()
        self.expect(",")
        key2 = self.parse_pattern_name()
        self.expect(",")
        val = self.parse_pattern_name()
        self.expect(">")
        if not self.check_name("in"):
            token = self.peek()
            raise ParseError(f"expected 'in' but found {token.text!r}", token.line, token.column)
        self.advance()
        self.expect("<")
        # The sources are parsed below the comparison level so that the
        # closing '>' of the pair is not mistaken for a greater-than operator.
        left = self.parse_range()
        self.expect(",")
        right = self.parse_range()
        self.expect(">")
        self.expect(")")
        body = self.parse_expression()
        return Merge(left, right, body, key1_name=key1, key2_name=key2, val_name=val)

    def parse_dict(self) -> Expr:
        self.expect("{")
        entries = [self.parse_dict_entry()]
        while self.accept(","):
            entries.append(self.parse_dict_entry())
        self.expect("}")
        return sugar.desugar_dict_literal(entries)

    def parse_dict_entry(self) -> sugar.DictEntry:
        unique = False
        annot: str | None = None
        while self.check("@"):
            self.advance()
            modifier = self.expect_name().lower()
            if modifier == "unique":
                unique = True
            elif modifier in ("dense", "hash"):
                annot = modifier
            else:
                token = self.peek()
                raise ParseError(f"unknown annotation @{modifier}", token.line, token.column)
        keys: list[Expr]
        if self.accept("("):
            if self.accept(")"):
                keys = []
            else:
                keys = [self.parse_expression()]
                while self.accept(","):
                    keys.append(self.parse_expression())
                self.expect(")")
        else:
            keys = [self.parse_expression()]
        self.expect("->")
        value = self.parse_expression()
        return sugar.DictEntry(keys, value, unique=unique, annot=annot)


class _MultiScalarDecl(list):
    """Internal: several scalars declared in one CREATE SCALAR statement."""

    def __init__(self, decls: list[ScalarDecl]):
        super().__init__(decls)


# ---------------------------------------------------------------------------
# Name resolution: bound identifiers stay Var, everything else becomes Sym
# ---------------------------------------------------------------------------


def resolve_globals(expr: Expr, bound: frozenset[str] = frozenset()) -> Expr:
    """Convert free :class:`Var` occurrences into :class:`Sym` globals."""
    from .ast import Let, Merge, Sum

    if isinstance(expr, Var):
        if expr.name in bound:
            return expr
        return Sym(expr.name)
    kids = children(expr)
    if not kids:
        return expr
    if isinstance(expr, Let):
        value = resolve_globals(expr.value, bound)
        body = resolve_globals(expr.body, bound | {expr.name} if expr.name else bound)
        return Let(value, body, name=expr.name)
    if isinstance(expr, Sum):
        source = resolve_globals(expr.source, bound)
        names = {n for n in (expr.key_name, expr.val_name) if n}
        body = resolve_globals(expr.body, bound | names)
        return Sum(source, body, key_name=expr.key_name, val_name=expr.val_name)
    if isinstance(expr, Merge):
        left = resolve_globals(expr.left, bound)
        right = resolve_globals(expr.right, bound)
        names = {n for n in (expr.key1_name, expr.key2_name, expr.val_name) if n}
        body = resolve_globals(expr.body, bound | names)
        return Merge(left, right, body, key1_name=expr.key1_name,
                     key2_name=expr.key2_name, val_name=expr.val_name)
    return rebuild(expr, [resolve_globals(child, bound) for child in kids])


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def parse_expr(source: str) -> Expr:
    """Parse a single SDQLite expression into a named-form AST.

    Identifiers bound by ``sum`` / ``let`` / ``merge`` are variables; all other
    identifiers become global :class:`~repro.sdqlite.ast.Sym` references.
    """
    parser = _Parser(source)
    expr = parser.parse_expression()
    if not parser.at_end():
        token = parser.peek()
        raise ParseError(f"unexpected trailing input {token.text!r}", token.line, token.column)
    return resolve_globals(expr)


def parse_program(source: str) -> list[Declaration]:
    """Parse a sequence of ``CREATE`` statements into declarations."""
    parser = _Parser(source)
    raw = parser.parse_program()
    declarations: list[Declaration] = []
    for decl in raw:
        if isinstance(decl, _MultiScalarDecl):
            declarations.extend(decl)
        elif isinstance(decl, TensorDecl):
            declarations.append(TensorDecl(decl.name, resolve_globals(decl.mapping)))
        elif isinstance(decl, ArrayDecl):
            declarations.append(ArrayDecl(decl.name, resolve_globals(decl.size), decl.dtype))
        elif isinstance(decl, HashMapDecl):
            declarations.append(
                HashMapDecl(decl.name, tuple(resolve_globals(d) for d in decl.dims), decl.dtype)
            )
        elif isinstance(decl, TrieDecl):
            declarations.append(
                TrieDecl(decl.name, tuple(resolve_globals(d) for d in decl.dims), decl.dtype)
            )
        else:
            declarations.append(decl)
    return declarations
